"""Tests for the simulated SimpleDB service and its select parser."""

import pytest

from repro.cloud.simpledb import (
    ATTRIBUTE_LIMIT_BYTES,
    BATCH_PUT_LIMIT,
    SELECT_PAGE_ITEMS,
    parse_select,
)
from repro.errors import (
    InvalidRequestError,
    LimitExceededError,
    NoSuchDomainError,
    QuerysyntaxError,
)


@pytest.fixture
def domain(strict_account):
    strict_account.simpledb.create_domain("d")
    return "d"


class TestPutGet:
    def test_roundtrip(self, strict_account, domain):
        sdb = strict_account.simpledb
        sdb.put_attributes(domain, "item1", [("name", "foo"), ("type", "file")])
        attributes = sdb.get_attributes(domain, "item1")
        assert attributes == {"name": ["foo"], "type": ["file"]}

    def test_multi_valued_attributes_append(self, strict_account, domain):
        sdb = strict_account.simpledb
        sdb.put_attributes(domain, "i", [("input", "a_1")])
        sdb.put_attributes(domain, "i", [("input", "b_2")])
        assert sorted(sdb.get_attributes(domain, "i")["input"]) == ["a_1", "b_2"]

    def test_replace_overwrites(self, strict_account, domain):
        sdb = strict_account.simpledb
        sdb.put_attributes(domain, "i", [("v", "old")])
        sdb.put_attributes(domain, "i", [("v", "new")], replace=True)
        assert sdb.get_attributes(domain, "i")["v"] == ["new"]

    def test_get_missing_item_is_empty(self, strict_account, domain):
        assert strict_account.simpledb.get_attributes(domain, "nope") == {}

    def test_missing_domain(self, strict_account):
        with pytest.raises(NoSuchDomainError):
            strict_account.simpledb.get_attributes("nope", "i")

    def test_value_size_limit(self, strict_account, domain):
        with pytest.raises(LimitExceededError):
            strict_account.simpledb.put_attributes(
                domain, "i", [("v", "x" * (ATTRIBUTE_LIMIT_BYTES + 1))]
            )

    def test_batch_limit(self, strict_account, domain):
        items = [(f"i{n}", [("a", "v")]) for n in range(BATCH_PUT_LIMIT + 1)]
        with pytest.raises(LimitExceededError):
            strict_account.simpledb.batch_put(domain, items)

    def test_empty_batch_rejected(self, strict_account, domain):
        with pytest.raises(InvalidRequestError):
            strict_account.simpledb.batch_put(domain, [])

    def test_batch_put_stores_all_items(self, strict_account, domain):
        sdb = strict_account.simpledb
        items = [(f"i{n}", [("n", str(n))]) for n in range(25)]
        sdb.batch_put(domain, items)
        for n in range(25):
            assert sdb.get_attributes(domain, f"i{n}") == {"n": [str(n)]}


class TestSelectParser:
    def test_plain_select(self):
        domain, condition = parse_select("select * from mydomain")
        assert domain == "mydomain"
        assert condition is None

    def test_equality(self):
        _, cond = parse_select("select * from d where name = 'foo'")
        assert cond.matches("i", {"name": ["foo"]})
        assert not cond.matches("i", {"name": ["bar"]})

    def test_quoted_escape(self):
        _, cond = parse_select("select * from d where name = 'it''s'")
        assert cond.matches("i", {"name": ["it's"]})

    def test_and_or_precedence(self):
        _, cond = parse_select(
            "select * from d where type = 'file' and name = 'a' or name = 'b'"
        )
        assert cond.matches("i", {"name": ["b"]})
        assert cond.matches("i", {"type": ["file"], "name": ["a"]})
        assert not cond.matches("i", {"type": ["proc"], "name": ["a"]})

    def test_parentheses(self):
        _, cond = parse_select(
            "select * from d where type = 'file' and (name = 'a' or name = 'b')"
        )
        assert not cond.matches("i", {"name": ["b"]})
        assert cond.matches("i", {"type": ["file"], "name": ["b"]})

    def test_like_prefix(self):
        _, cond = parse_select("select * from d where itemName() like 'uuid1_%'")
        assert cond.matches("uuid1_2", {})
        assert not cond.matches("uuid2_2", {})

    def test_in_list(self):
        _, cond = parse_select("select * from d where input in ('a_1', 'b_2')")
        assert cond.matches("i", {"input": ["b_2"]})
        assert not cond.matches("i", {"input": ["c_3"]})

    def test_not_equal(self):
        _, cond = parse_select("select * from d where type != 'file'")
        assert cond.matches("i", {"type": ["proc"]})
        assert not cond.matches("i", {"type": ["file"]})
        # Absent attribute: no value differs, so no match (SimpleDB).
        assert not cond.matches("i", {})

    def test_multi_valued_any_semantics(self):
        _, cond = parse_select("select * from d where input = 'x_1'")
        assert cond.matches("i", {"input": ["a_0", "x_1"]})

    def test_syntax_errors(self):
        for bad in (
            "drop table d",
            "select * from",
            "select * from d where",
            "select * from d where name ==",
            "select * from d where name = unquoted",
        ):
            with pytest.raises(QuerysyntaxError):
                parse_select(bad)


class TestSelectExecution:
    def test_select_all(self, strict_account, domain):
        sdb = strict_account.simpledb
        sdb.batch_put(domain, [("a", [("t", "1")]), ("b", [("t", "2")])])
        rows = sdb.select(f"select * from {domain}")
        assert [name for name, _ in rows] == ["a", "b"]

    def test_select_filter(self, strict_account, domain):
        sdb = strict_account.simpledb
        sdb.batch_put(
            domain,
            [
                ("p1", [("type", "proc"), ("name", "blast")]),
                ("f1", [("type", "file"), ("name", "out")]),
            ],
        )
        rows = sdb.select(f"select * from {domain} where type = 'proc'")
        assert [name for name, _ in rows] == ["p1"]

    def test_select_paginates(self, strict_account, domain):
        sdb = strict_account.simpledb
        total = SELECT_PAGE_ITEMS + 10
        for start in range(0, total, 25):
            batch = [
                (f"i{n:06d}", [("a", "v")])
                for n in range(start, min(start + 25, total))
            ]
            sdb.batch_put(domain, batch)
        before = strict_account.billing.snapshot()["simpledb"].get("Select", 0)
        rows = sdb.select(f"select * from {domain}")
        selects = strict_account.billing.snapshot()["simpledb"]["Select"] - before
        assert len(rows) == total
        assert selects == 2  # two pages

    def test_eventual_consistency_hides_fresh_items(self, account):
        account.simpledb.create_domain("d")
        account.simpledb.put_attributes("d", "i", [("a", "v")])
        account.settle(120.0)
        assert account.simpledb.get_attributes("d", "i") == {"a": ["v"]}
