"""Shared fixtures for the test suite."""

import pytest

from repro.cloud.account import CloudAccount
from repro.cloud.consistency import ConsistencyModel


@pytest.fixture
def account():
    """An eventually consistent cloud account with a fixed seed."""
    return CloudAccount(seed=1234)


@pytest.fixture
def strict_account():
    """A strictly consistent account (Azure-style), for tests that need
    read-your-writes without settle calls."""
    return CloudAccount(consistency=ConsistencyModel.STRICT, seed=1234)


@pytest.fixture
def bucket(strict_account):
    strict_account.s3.create_bucket("t")
    return "t"
