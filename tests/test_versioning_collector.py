"""Tests for causality-based versioning and the PASS collector."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TraceError
from repro.provenance.graph import EdgeType, NodeRef
from repro.provenance.pass_collector import (
    ComputeIntent,
    DeleteIntent,
    FlushIntent,
    PassCollector,
    ReadIntent,
)
from repro.provenance.syscalls import TraceBuilder
from repro.provenance.versioning import VersionManager


class TestVersionManager:
    def test_objects_start_at_zero(self):
        manager = VersionManager()
        assert manager.current("f") == NodeRef("f", 0)

    def test_same_writer_coalesces(self):
        manager = VersionManager()
        first = manager.on_write("p", "f")
        second = manager.on_write("p", "f")
        assert first.ref == second.ref == NodeRef("f", 0)
        assert not second.new_version

    def test_write_after_read_bumps(self):
        manager = VersionManager()
        manager.on_write("p", "f")
        manager.on_read("q", "f")  # freeze
        decision = manager.on_write("p", "f")
        assert decision.new_version
        assert decision.ref == NodeRef("f", 1)
        assert decision.previous == NodeRef("f", 0)

    def test_different_writer_bumps(self):
        manager = VersionManager()
        manager.on_write("p", "f")
        decision = manager.on_write("q", "f")
        assert decision.new_version
        assert decision.ref.version == 1

    def test_freeze_on_flush_bumps_next_write(self):
        manager = VersionManager()
        manager.on_write("p", "f")
        manager.freeze("f")
        decision = manager.on_write("p", "f")
        assert decision.new_version

    def test_freeze_untouched_object_is_noop(self):
        manager = VersionManager()
        manager.freeze("f")
        decision = manager.on_write("p", "f")
        assert not decision.new_version

    def test_reader_taint_reversions_writer(self):
        manager = VersionManager()
        manager.mark_process_wrote("p")
        decision = manager.on_reader_taint("p")
        assert decision.new_version
        assert decision.ref == NodeRef("p", 1)

    def test_reader_taint_noop_without_writes(self):
        manager = VersionManager()
        decision = manager.on_reader_taint("p")
        assert not decision.new_version

    def test_version_count(self):
        manager = VersionManager()
        assert manager.version_count("f") == 0
        manager.on_write("p", "f")
        manager.freeze("f")
        manager.on_write("p", "f")
        assert manager.version_count("f") == 2


class TestCollectorBasics:
    def test_spawn_creates_proc_node_with_attributes(self):
        builder = TraceBuilder()
        pid = builder.spawn(
            "tool", argv=["tool", "-v"], env=(("K", "V"),), exec_path="/bin/tool"
        )
        collector = PassCollector()
        collector.feed_trace(builder.trace)
        uuid = collector.process_uuid(pid)
        node = collector.graph.node(NodeRef(uuid, 0))
        bundle = collector.pending_bundle(uuid)
        attributes = {r.attribute for r in bundle.records}
        assert node.name == "tool"
        assert {"type", "name", "pid", "argv", "env", "exec"} <= attributes

    def test_read_creates_input_edge(self):
        builder = TraceBuilder()
        pid = builder.spawn("p")
        builder.read(pid, "/in", 10)
        collector = PassCollector()
        intents = collector.feed_trace(builder.trace)
        assert isinstance(intents[0], ReadIntent)
        proc = collector.versions.current(collector.process_uuid(pid))
        file_ref = collector.versions.current(collector.file_uuid("/in"))
        assert any(
            e.dst == file_ref and e.edge_type is EdgeType.INPUT
            for e in collector.graph.out_edges(proc)
        )

    def test_write_close_emits_flush_intent(self):
        builder = TraceBuilder()
        pid = builder.spawn("p")
        builder.write_close(pid, "/out", 500)
        collector = PassCollector()
        intents = collector.feed_trace(builder.trace)
        flushes = [i for i in intents if isinstance(i, FlushIntent)]
        assert len(flushes) == 1
        assert flushes[0].blob.size == 500
        assert flushes[0].path == "/out"

    def test_close_of_read_only_file_is_silent(self):
        builder = TraceBuilder()
        pid = builder.spawn("p")
        builder.close(pid, "/never-written")
        collector = PassCollector()
        assert collector.feed_trace(builder.trace) == []

    def test_unlink_emits_delete_intent(self):
        builder = TraceBuilder()
        pid = builder.spawn("p")
        builder.write_close(pid, "/out", 10)
        builder.unlink(pid, "/out")
        collector = PassCollector()
        intents = collector.feed_trace(builder.trace)
        assert isinstance(intents[-1], DeleteIntent)

    def test_compute_passthrough(self):
        builder = TraceBuilder()
        pid = builder.spawn("p")
        builder.compute(pid, 2.5, memory_bound=True)
        collector = PassCollector()
        intents = collector.feed_trace(builder.trace)
        assert intents == [ComputeIntent(2.5, True)]

    def test_event_for_unspawned_pid(self):
        builder = TraceBuilder()
        builder.read(999, "/x", 1)
        with pytest.raises(TraceError):
            PassCollector().feed_trace(builder.trace)


class TestCollectorVersioning:
    def test_read_after_write_reversions_process(self):
        builder = TraceBuilder()
        pid = builder.spawn("p")
        builder.write(pid, "/out", 10)
        builder.read(pid, "/in", 5)
        collector = PassCollector()
        collector.feed_trace(builder.trace)
        uuid = collector.process_uuid(pid)
        assert collector.versions.current(uuid).version == 1
        # The new process version carries a version-of edge.
        assert collector.graph.has_node(NodeRef(uuid, 1))

    def test_flush_freezes_file_version(self):
        builder = TraceBuilder()
        pid = builder.spawn("p")
        builder.write(pid, "/out", 10)
        builder.flush(pid, "/out")
        builder.write(pid, "/out", 20)
        builder.close(pid, "/out")
        collector = PassCollector()
        intents = collector.feed_trace(builder.trace)
        flushes = [i for i in intents if isinstance(i, FlushIntent)]
        assert flushes[0].ref.version == 0
        assert flushes[1].ref.version == 1

    def test_transitive_dependency_chain(self):
        """read A -> write B; read B -> write C: C transitively depends
        on A through the processes (the paper's §2.1 example)."""
        builder = TraceBuilder()
        p1 = builder.spawn("p1")
        builder.read(p1, "/a", 1)
        builder.write_close(p1, "/b", 1)
        p2 = builder.spawn("p2")
        builder.read(p2, "/b", 1)
        builder.write_close(p2, "/c", 1)
        collector = PassCollector()
        collector.feed_trace(builder.trace)
        c_ref = collector.versions.current(collector.file_uuid("/c"))
        ancestors = collector.graph.ancestors(c_ref)
        assert collector.versions.current(collector.file_uuid("/a")) in ancestors

    def test_pending_closure_is_ancestors_first(self):
        builder = TraceBuilder()
        pid = builder.spawn("p", exec_path="/bin/p")
        builder.read(pid, "/in", 1)
        builder.write_close(pid, "/out", 1)
        collector = PassCollector()
        collector.feed_trace(builder.trace)
        out_uuid = collector.file_uuid("/out")
        bundles = collector.pop_pending_closure(out_uuid)
        order = [b.uuid for b in bundles]
        # The primary object comes last; its ancestors come first.
        assert order[-1] == out_uuid
        assert collector.file_uuid("/in") in order
        # Popping removed the bundles.
        assert collector.pending_bundle(out_uuid) is None

    def test_closure_includes_only_reachable(self):
        builder = TraceBuilder()
        p1 = builder.spawn("p1")
        builder.write_close(p1, "/a", 1)
        p2 = builder.spawn("p2")
        builder.write_close(p2, "/b", 1)
        collector = PassCollector()
        collector.feed_trace(builder.trace)
        bundles = collector.pop_pending_closure(collector.file_uuid("/a"))
        uuids = {b.uuid for b in bundles}
        assert collector.file_uuid("/b") not in uuids
        assert collector.process_uuid(p2) not in uuids

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["read", "write", "flush"]),
                st.integers(min_value=0, max_value=3),
            ),
            max_size=40,
        )
    )
    def test_collector_graph_always_acyclic(self, operations):
        """Whatever interleaving of reads/writes/flushes a process
        performs over a few files, the provenance graph stays acyclic
        (the versioning rules' core guarantee)."""
        builder = TraceBuilder()
        pid = builder.spawn("fuzz")
        paths = [f"/f{i}" for i in range(4)]
        for op, index in operations:
            if op == "read":
                builder.read(pid, paths[index], 1)
            elif op == "write":
                builder.write(pid, paths[index], 10)
            else:
                builder.flush(pid, paths[index])
        collector = PassCollector()
        collector.feed_trace(builder.trace)  # CycleError would propagate
        for node in collector.graph.nodes():
            assert node.ref not in collector.graph.ancestors(node.ref)
