"""Tests for the blob abstraction."""

import pytest
from hypothesis import given, strategies as st

from repro.cloud.blob import EMPTY_BLOB, Blob


class TestBlob:
    def test_from_bytes(self):
        blob = Blob.from_bytes(b"hello")
        assert blob.size == 5
        assert blob.data == b"hello"

    def test_from_text_roundtrip(self):
        blob = Blob.from_text("héllo")
        assert blob.text() == "héllo"

    def test_synthetic_has_no_data(self):
        blob = Blob.synthetic(1024, "x")
        assert blob.data is None
        assert blob.size == 1024
        with pytest.raises(ValueError):
            blob.text()

    def test_synthetic_identity_determines_digest(self):
        assert Blob.synthetic(10, "a").digest == Blob.synthetic(10, "a").digest
        assert Blob.synthetic(10, "a").digest != Blob.synthetic(10, "b").digest
        assert Blob.synthetic(10, "a").digest != Blob.synthetic(11, "a").digest

    def test_matches(self):
        assert Blob.from_bytes(b"x").matches(Blob.from_bytes(b"x"))
        assert not Blob.from_bytes(b"x").matches(Blob.from_bytes(b"y"))

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Blob(size=-1, digest="d")

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Blob(size=3, digest="d", data=b"ab")

    def test_empty_blob(self):
        assert EMPTY_BLOB.size == 0
        assert EMPTY_BLOB.text() == ""

    @given(st.binary(max_size=256))
    def test_from_bytes_size_and_equality(self, data):
        blob = Blob.from_bytes(data)
        assert blob.size == len(data)
        assert blob.matches(Blob.from_bytes(data))

    @given(st.binary(max_size=64), st.binary(max_size=64))
    def test_digest_collision_free_for_distinct_content(self, a, b):
        if a != b:
            assert not Blob.from_bytes(a).matches(Blob.from_bytes(b))
