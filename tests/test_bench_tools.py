"""Bench plumbing: single-sample aggregation and BENCH_*.json output."""

import json
import math
import os

from repro.bench.harness import Aggregate, aggregate, repeat_with_seeds
from repro.bench.reporting import BENCH_DIR_ENV, write_bench_json


class TestAggregate:
    def test_single_sample_has_zero_spread(self):
        # Regression: a single-sample run must aggregate to stddev 0.0
        # and error bar 0.0 (not NaN, not a division artifact).
        agg = aggregate([5.0])
        assert agg.mean == 5.0
        assert agg.stddev == 0.0
        assert agg.error_bar == 0.0
        assert str(agg) == "5.0 ± 0.0"

    def test_single_repeat_run(self):
        agg = repeat_with_seeds(lambda seed: 42.0, repeats=1)
        assert agg.mean == 42.0
        assert agg.error_bar == 0.0

    def test_non_finite_stddev_yields_zero_error_bar(self):
        # Hand-built aggregates (e.g. deserialized) may carry NaN.
        agg = Aggregate(mean=1.0, stddev=float("nan"), samples=[1.0, 2.0])
        assert agg.error_bar == 0.0

    def test_multi_sample_statistics(self):
        agg = aggregate([1.0, 2.0, 3.0])
        assert agg.mean == 2.0
        assert math.isclose(agg.stddev, 1.0)
        assert math.isclose(agg.error_bar, 1.96 / math.sqrt(3))

    def test_as_dict_round_trips_through_json(self):
        payload = json.loads(json.dumps(aggregate([1.0, 2.0]).as_dict()))
        assert payload["mean"] == 1.5
        assert payload["samples"] == [1.0, 2.0]
        assert payload["error_bar"] > 0


class TestWriteBenchJson:
    def test_writes_named_file(self, tmp_path):
        path = write_bench_json(
            "unit_test",
            {"elapsed": aggregate([1.0, 2.0]).as_dict(), "ops": 7},
            directory=str(tmp_path),
        )
        assert os.path.basename(path) == "BENCH_unit_test.json"
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["experiment"] == "unit_test"
        assert payload["results"]["ops"] == 7
        assert payload["results"]["elapsed"]["mean"] == 1.5

    def test_env_var_sets_directory(self, tmp_path, monkeypatch):
        monkeypatch.setenv(BENCH_DIR_ENV, str(tmp_path / "nested"))
        path = write_bench_json("env_test", {"ok": True})
        assert path.startswith(str(tmp_path / "nested"))
        assert os.path.exists(path)

    def test_non_serializable_values_fall_back_to_str(self, tmp_path):
        path = write_bench_json(
            "fallback", {"obj": object()}, directory=str(tmp_path)
        )
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["results"]["obj"].startswith("<object object")
