"""End-to-end tests for the JSON/HTTP ingest-and-query front end.

A real :mod:`http.server` instance binds a loopback port (port 0, so the
kernel picks a free one) and a stdlib ``urllib`` client drives the full
paper workflow over the wire: ingest a small provenance graph, flush the
gateway window, settle the virtual clock, then answer Q1-Q4 and a raw
select.  Parametrized over both backends — the HTTP surface is the same
thin marshalling layer either way.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.cloud.account import CloudAccount
from repro.service import ProvenanceFrontend


def _post(base, path, payload):
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read())


def _get(base, path):
    with urllib.request.urlopen(base + path) as response:
        return json.loads(response.read())


@pytest.fixture(params=["sim", "local"])
def frontend(request):
    front = ProvenanceFrontend(
        account=CloudAccount(seed=11, backend=request.param)
    )
    host, port = front.start()
    base = f"http://{host}:{port}"
    yield front, base
    front.stop()
    front.account.close()


def _ingest_small_graph(base):
    """One process (blastall) with one output file and one grandchild."""
    _post(base, "/v1/ingest", {
        "client_id": "c0",
        "path": "/mnt/pass/blastall",
        "uuid": "proc-1",
        "version": 0,
        "data": "#!ELF",
        "attributes": {"type": ["proc"], "name": ["blastall"]},
    })
    _post(base, "/v1/ingest", {
        "client_id": "c0",
        "path": "/mnt/pass/out.fasta",
        "uuid": "file-1",
        "version": 0,
        "data": "ACGT",
        "attributes": {
            "type": ["file"],
            "name": ["out.fasta"],
            "input": ["proc-1_0"],
        },
    })
    _post(base, "/v1/ingest", {
        "client_id": "c1",
        "path": "/mnt/pass/summary.txt",
        "uuid": "file-2",
        "version": 0,
        "data": "4 bases",
        "attributes": {
            "type": ["file"],
            "name": ["summary.txt"],
            "input": ["file-1_0"],
        },
    })
    flushed = _post(base, "/v1/flush", {})
    assert flushed["requests"] >= 1
    settled = _post(base, "/v1/settle", {"seconds": 120.0})
    assert settled["virtual_now"] > 0.0


class TestLifecycle:
    def test_healthz_reports_backend_and_clock(self, frontend):
        front, base = frontend
        health = _get(base, "/healthz")
        assert health["status"] == "ok"
        assert health["backend"] == front.account.backend
        assert health["virtual_now"] == front.account.now

    def test_start_is_idempotent(self, frontend):
        front, base = frontend
        assert front.start() == front.address

    def test_stats_counts_pending_and_operations(self, frontend):
        front, base = frontend
        before = _get(base, "/v1/stats")
        _post(base, "/v1/ingest", {
            "client_id": "c0",
            "path": "/mnt/pass/a",
            "uuid": "u-1",
            "attributes": {"type": ["file"]},
        })
        during = _get(base, "/v1/stats")
        assert during["pending"] == before["pending"] + 1
        _post(base, "/v1/flush", {})
        after = _get(base, "/v1/stats")
        assert after["pending"] == 0
        assert after["operations"] > before["operations"]


class TestIngestAndQuery:
    def test_full_workflow_q1_to_q4(self, frontend):
        front, base = frontend
        _ingest_small_graph(base)

        q1 = _post(base, "/v1/query", {"query": "q1"})
        assert set(q1["answer"]) == {"proc-1_0", "file-1_0", "file-2_0"}
        assert q1["answer"]["file-1_0"]["input"] == ["proc-1_0"]
        assert q1["stats"]["operations"] >= 1

        q2 = _post(
            base, "/v1/query", {"query": "q2", "arg": "/mnt/pass/out.fasta"}
        )
        assert q2["answer"]["name"] == ["out.fasta"]
        assert q2["answer"]["input"] == ["proc-1_0"]

        q3 = _post(base, "/v1/query", {"query": "q3", "arg": "blastall"})
        assert q3["answer"] == ["file-1_0"]

        q4 = _post(base, "/v1/query", {"query": "q4", "arg": "blastall"})
        assert q4["answer"] == ["file-1_0", "file-2_0"]

    def test_select_over_http(self, frontend):
        front, base = frontend
        _ingest_small_graph(base)
        rows = _post(base, "/v1/select", {
            "expression": "select * from `pass-prov` where type = 'proc'",
        })["rows"]
        assert len(rows) == 1
        item, attributes = rows[0]
        assert attributes["name"] == ["blastall"]

    def test_answers_identical_across_backends(self):
        """The differential property, through the HTTP surface itself."""
        answers = {}
        for backend in ("sim", "local"):
            front = ProvenanceFrontend(
                account=CloudAccount(seed=11, backend=backend)
            )
            host, port = front.start()
            base = f"http://{host}:{port}"
            _ingest_small_graph(base)
            answers[backend] = (
                _post(base, "/v1/query", {"query": "q1"})["answer"],
                _post(base, "/v1/query", {"query": "q4", "arg": "blastall"}),
                _post(base, "/v1/select", {
                    "expression": "select * from `pass-prov`",
                })["rows"],
                _get(base, "/v1/stats")["cost_usd"],
            )
            front.stop()
            front.account.close()
        assert answers["sim"] == answers["local"]


class TestErrorHandling:
    def _status(self, base, path, payload):
        try:
            _post(base, path, payload)
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())
        return 200, None

    def test_unknown_endpoint_is_404(self, frontend):
        front, base = frontend
        status, body = self._status(base, "/v1/nope", {})
        assert status == 404
        assert "no such endpoint" in body["error"]

    def test_missing_field_is_400(self, frontend):
        front, base = frontend
        status, body = self._status(base, "/v1/ingest", {"client_id": "c0"})
        assert status == 400
        assert "KeyError" in body["error"]

    def test_unknown_query_is_400(self, frontend):
        front, base = frontend
        status, body = self._status(base, "/v1/query", {"query": "q9"})
        assert status == 400
        assert "q1-q4" in body["error"]

    def test_bad_select_is_400(self, frontend):
        front, base = frontend
        status, body = self._status(
            base, "/v1/select", {"expression": "not a select"}
        )
        assert status == 400

    def test_invalid_json_body_is_400(self, frontend):
        front, base = frontend
        request = urllib.request.Request(
            base + "/v1/flush",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400
