"""The array-backed index substrate: units, equivalence, accounting.

Four layers of coverage for the memory-lean store:

- unit tests of the two-tier sorted runs (``_SortedIdRun``,
  ``_SortedStringRun``) and the interning ``_StringTable``, including
  the tail-merge boundaries: empty tail, single-run in-order appends,
  the merge exactly at the threshold, reverse-order inserts, and a
  seeded fuzz against a plain sorted-set reference;
- an equivalence battery replaying the select-fuzz seeds on two
  accounts that differ only in ``index_store`` and asserting
  fingerprints (rows, select ops, billed bytes) byte-identical,
  strict and mid-propagation, with deletes interleaved, and on the
  sqlite backend (including resurrection on reopen);
- a seeded put/delete/select interleaving property test asserting the
  incremental selectivity stats (``attr_postings``, ``set_size_hist``)
  equal a from-scratch recount — no negative counts, no leaked
  histogram buckets, no empty inner containers;
- memory-gauge tests: the fixed ``index_memory_bytes`` accounting
  pinned against a ``tracemalloc``-measured build, gauge monotonicity
  as a domain grows, and array strictly below legacy on equal data.
"""

import random
import tracemalloc

import pytest

from repro.cloud.account import CloudAccount
from repro.cloud.consistency import ConsistencyModel
from repro.cloud.simpledb import (
    _ArrayDomainState,
    _LegacyDomainState,
    _SortedIdRun,
    _SortedStringRun,
    _StringTable,
)
from test_select_fuzz import (
    TREE_COUNT,
    _fingerprint,
    _random_tree,
    _seed_store,
    _select_frozen,
)


# --------------------------------------------------------------------------
# Substrate units
# --------------------------------------------------------------------------

class TestStringTable:
    def test_ids_assigned_in_first_seen_order(self):
        table = _StringTable()
        assert table.intern("b") == 0
        assert table.intern("a") == 1
        assert table.intern("b") == 0  # idempotent
        assert table.string(0) == "b"
        assert table.string(1) == "a"
        assert table.id_of("a") == 1
        assert table.id_of("missing") is None
        assert len(table) == 2


class TestSortedIdRun:
    def test_in_order_appends_never_allocate_a_tail(self):
        run = _SortedIdRun()
        for ident in range(5000):
            assert run.add(ident)
        assert run.tail is None
        assert list(run.main) == list(range(5000))
        assert len(run) == 5000

    def test_empty_and_single_element(self):
        run = _SortedIdRun()
        assert len(run) == 0
        assert list(run) == []
        assert 7 not in run
        assert not run.discard(7)
        assert run.add(7)
        assert 7 in run
        assert len(run) == 1
        assert not run.add(7)  # set semantics
        assert len(run) == 1

    def test_out_of_order_goes_to_tail_and_merges_at_threshold(self):
        run = _SortedIdRun()
        run.add(10_000_000)  # main = [10M]; everything below is out of order
        threshold = _SortedIdRun._THRESHOLD
        for ident in range(threshold - 1):
            run.add(ident)
        assert run.tail is not None
        assert len(run.tail) == threshold - 1
        run.add(threshold - 1)  # tail reaches the threshold: merge fires
        assert run.tail is None
        assert list(run.main) == list(range(threshold)) + [10_000_000]

    def test_reverse_order_inserts_stay_sorted(self):
        run = _SortedIdRun()
        for ident in range(300, 0, -1):
            assert run.add(ident)
        assert sorted(run) == list(range(1, 301))
        assert all(ident in run for ident in range(1, 301))

    def test_discard_from_both_tiers(self):
        run = _SortedIdRun()
        run.add(100)
        run.add(200)
        run.add(50)  # tail
        assert run.discard(200)  # from main
        assert run.discard(50)   # from tail (tail becomes None)
        assert run.tail is None
        assert not run.discard(999)
        assert sorted(run) == [100]

    def test_fuzz_against_set_reference(self):
        rng = random.Random(4242)
        run = _SortedIdRun()
        reference = set()
        for _ in range(20_000):
            ident = rng.randrange(3000)
            if rng.random() < 0.3:
                assert run.discard(ident) == (ident in reference)
                reference.discard(ident)
            else:
                assert run.add(ident) == (ident not in reference)
                reference.add(ident)
        assert sorted(run) == sorted(reference)
        assert list(run.main) == sorted(run.main)


class TestSortedStringRun:
    def test_in_order_appends_never_allocate_a_tail(self):
        run = _SortedStringRun()
        names = [f"n{i:05d}" for i in range(1000)]
        for name in names:
            run.add(name)
        assert run._tail is None
        assert run.ordered() == names

    def test_ordered_folds_the_tail(self):
        run = _SortedStringRun()
        for name in ("m", "z", "a", "k"):  # a, k arrive out of order
            run.add(name)
        assert run._tail is not None
        assert run.ordered() == ["a", "k", "m", "z"]
        assert run._tail is None  # compacted by the read

    def test_merge_at_threshold(self):
        run = _SortedStringRun()
        run.add("zzzz")
        threshold = _SortedStringRun._THRESHOLD
        for i in range(threshold):
            run.add(f"a{i:06d}")
        assert run._tail is None  # threshold merge fired without a read
        ordered = run.ordered()
        assert ordered == sorted(ordered)
        assert len(run) == threshold + 1

    def test_discard_and_iteration(self):
        run = _SortedStringRun()
        for name in ("c", "a", "b"):
            run.add(name)
        assert run.discard("b")
        assert not run.discard("b")
        assert list(run) == ["a", "c"]

    def test_fuzz_against_sorted_reference(self):
        rng = random.Random(777)
        run = _SortedStringRun()
        reference = set()
        for _ in range(5000):
            name = f"s{rng.randrange(800):04d}"
            if rng.random() < 0.3:
                if name in reference:
                    assert run.discard(name)
                    reference.discard(name)
                else:
                    assert not run.discard(name)
            elif name not in reference:
                run.add(name)
                reference.add(name)
        assert run.ordered() == sorted(reference)


# --------------------------------------------------------------------------
# Cross-store equivalence on the fuzz seeds
# --------------------------------------------------------------------------

def _battery_fingerprints(account, seed, deletes=False):
    """Replay the select-fuzz battery on one account and collect every
    tree's fingerprint (cost planner each tree, fixed planner and scan
    sampled periodically — all three feed the returned list, so any
    divergence between stores in any mode shows up)."""
    rng = random.Random(seed)
    sdb = account.simpledb
    _seed_store(sdb, rng)
    out = []
    for index in range(TREE_COUNT):
        expression = "select * from d where " + _random_tree(
            rng, rng.randrange(4)
        )
        if deletes and index % 25 == 10:
            victim = f"u{rng.randrange(20):03d}_{rng.randrange(3)}"
            spec = rng.choice(
                [None, ["tag"], [("version", f"{rng.randrange(3):03d}")]]
            )
            sdb.delete_attributes("d", victim, spec)
        sdb.use_indexes = True
        sdb.planner = "cost"
        out.append(_fingerprint(account, sdb, expression))
        if index % 5 == 0:
            sdb.planner = "fixed"
            out.append(_fingerprint(account, sdb, expression))
            sdb.use_indexes = False
            out.append(_fingerprint(account, sdb, expression))
            sdb.use_indexes = True
            sdb.planner = "cost"
    return out


def test_equivalence_battery_strict():
    array = CloudAccount(
        consistency=ConsistencyModel.STRICT, seed=97, index_store="array"
    )
    legacy = CloudAccount(
        consistency=ConsistencyModel.STRICT, seed=97, index_store="legacy"
    )
    assert _battery_fingerprints(array, 97) == _battery_fingerprints(
        legacy, 97
    )


def test_equivalence_battery_with_deletes():
    array = CloudAccount(
        consistency=ConsistencyModel.STRICT, seed=7, index_store="array"
    )
    legacy = CloudAccount(
        consistency=ConsistencyModel.STRICT, seed=7, index_store="legacy"
    )
    assert _battery_fingerprints(array, 7, deletes=True) == (
        _battery_fingerprints(legacy, 7, deletes=True)
    )


def test_equivalence_battery_under_eventual_consistency():
    """Mid-propagation, at frozen observation times: whatever visibility
    subset the store is in, both substrates must see the same one."""
    accounts = {
        store: CloudAccount(seed=131, index_store=store)
        for store in ("array", "legacy")
    }
    rngs = {store: random.Random(131) for store in accounts}
    for store, account in accounts.items():
        _seed_store(account.simpledb, rngs[store])
    # One rng (already aligned with the legacy seeding stream) drives
    # tree generation; both accounts run the same expression.
    rng = rngs["array"]
    for index in range(TREE_COUNT // 2):
        expression = "select * from d where " + _random_tree(
            rng, rng.randrange(4)
        )
        rows = {}
        for store, account in accounts.items():
            if index % 20 == 0:
                account.settle(1.5)
            rows[store] = repr(
                _select_frozen(account, account.simpledb, expression)
            )
        assert rows["array"] == rows["legacy"], f"tree #{index}: {expression}"


def _fp(account, sdb, expression):
    """Like the fuzz battery's fingerprint, tolerant of an account that
    has not billed any SimpleDB operation yet (a reopened store serves
    its first request from resurrected state)."""
    ops_before = account.billing.snapshot().get("simpledb", {}).get("Select", 0)
    bytes_before = account.billing.bytes_received()
    rows = sdb.select(expression)
    return (
        repr(rows),
        account.billing.snapshot()["simpledb"]["Select"] - ops_before,
        account.billing.bytes_received() - bytes_before,
    )


def test_equivalence_on_local_backend_with_reopen(tmp_path):
    """The sqlite tablestore shares this index path by subclassing: the
    array store must answer identically there too, including after the
    indexes are rebuilt from stored rows on reopen."""
    fingerprints = {}
    for store in ("array", "legacy"):
        root = tmp_path / store
        account = CloudAccount(
            consistency=ConsistencyModel.STRICT,
            seed=23,
            backend="local",
            backend_root=str(root),
            index_store=store,
        )
        rng = random.Random(23)
        _seed_store(account.simpledb, rng)
        trees = [
            "select * from d where " + _random_tree(rng, rng.randrange(4))
            for _ in range(20)
        ]
        first = [_fp(account, account.simpledb, tree) for tree in trees]
        account.close()
        # Reopen the same root: domains resurrect and the derived
        # indexes are rebuilt from the sqlite rows.
        reopened = CloudAccount(
            consistency=ConsistencyModel.STRICT,
            seed=23,
            backend="local",
            backend_root=str(root),
            index_store=store,
        )
        second = [_fp(reopened, reopened.simpledb, tree) for tree in trees]
        reopened.close()
        fingerprints[store] = (first, second)
    assert fingerprints["array"] == fingerprints["legacy"]


# --------------------------------------------------------------------------
# Selectivity bookkeeping: incremental stats == from-scratch recount
# --------------------------------------------------------------------------

_STAT_ATTRS = ("kind", "step", "flag")


@pytest.mark.parametrize("store", ["array", "legacy"])
@pytest.mark.parametrize("seed", [11, 59, 1009])
def test_stats_survive_delete_prune_reput_interleavings(store, seed):
    """Random put -> delete -> select (prune) -> re-put interleavings:
    after every settle point the incremental ``attr_postings`` and
    ``set_size_hist`` must equal a from-scratch recount of the live
    index sets — counts never negative, no leaked histogram buckets,
    no empty inner containers left behind."""
    account = CloudAccount(consistency=ConsistencyModel.STRICT, seed=seed,
                           index_store=store)
    sdb = account.simpledb
    sdb.create_domain("d")
    rng = random.Random(seed)
    names = [f"it{i:03d}" for i in range(40)]
    for step in range(300):
        action = rng.random()
        name = rng.choice(names)
        if action < 0.55:
            pairs = [
                (attr, f"{attr[0]}{rng.randrange(6)}")
                for attr in rng.sample(_STAT_ATTRS, rng.randrange(1, 4))
            ]
            sdb.put_attributes("d", name, pairs)
        elif action < 0.85:
            spec = rng.choice(
                [None, ["kind"], [("step", f"s{rng.randrange(6)}")],
                 ["flag", "step"]]
            )
            sdb.delete_attributes("d", name, spec)
        else:
            # Selects at settled time fire the pending prunes.
            account.settle(120.0)
            sdb.select("select * from d where kind = 'k1'")
        if step % 50 == 49:
            account.settle(120.0)
            sdb.select("select * from d where step > 's0'")
            state = sdb._domains["d"]
            postings, hist = state.recount_stats()
            assert state.attr_postings == postings, f"step {step}"
            assert state.set_size_hist == hist, f"step {step}"
            assert all(c > 0 for c in state.attr_postings.values())
            for attribute, inner in state.set_size_hist.items():
                assert inner, f"leaked empty histogram for {attribute!r}"
                assert all(c > 0 for c in inner.values())


# --------------------------------------------------------------------------
# Memory accounting
# --------------------------------------------------------------------------

def _populate_bare_state(state, items):
    """Feed a bare (service-less) domain state; keeps only interned,
    retained references so a tracemalloc delta matches what the gauge
    prices."""
    for i in range(items):
        name = f"memprobe-{i:06d}"
        state.add_name(name)
        state.note_pairs(
            name,
            (
                ("mp_kind", f"k{i % 7}"),
                ("mp_step", f"s{i % 97:04d}"),
                ("mp_blob", f"b{i:06d}"),
            ),
        )


@pytest.mark.parametrize("cls", [_ArrayDomainState, _LegacyDomainState])
def test_memory_gauge_tracks_tracemalloc(cls):
    """The fixed accounting must land within a tolerance band of a
    tracemalloc-measured build of a known domain.  The old gauge missed
    the inner histogram dicts, the pending-unindex tuples, and (for the
    legacy store) priced sets without their elements — at 1M items that
    undercount would poison bytes-per-item, so pin it here."""
    tracemalloc.start()
    try:
        before, _ = tracemalloc.get_traced_memory()
        state = cls()
        _populate_bare_state(state, 3000)
        # Park some pending-unindex entries so their tuples are priced.
        for i in range(50):
            state.schedule_unindex(
                f"memprobe-{i:06d}", [("mp_kind", f"k{i % 7}")], 1e9
            )
        after, _ = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    measured = after - before
    gauge = state.memory_bytes()
    assert measured > 0
    # Generous band: getsizeof and the allocator disagree on slack
    # (over-allocated lists, pymalloc rounding), but an accounting hole
    # the size of the old undercount cannot hide inside it.
    assert 0.45 * measured < gauge < 1.8 * measured, (
        f"{cls.__name__}: gauge {gauge} vs tracemalloc {measured}"
    )


def test_memory_gauge_monotone_as_domain_grows():
    account = CloudAccount(seed=3)
    sdb = account.simpledb
    sdb.create_domain("d")
    last = sdb.index_memory_bytes()
    for checkpoint in range(6):
        items = [
            (
                f"grow-{checkpoint:02d}-{i:04d}",
                [("g_kind", f"k{i % 5}"), ("g_seq", f"{i:04d}")],
            )
            for i in range(500)
        ]
        for start in range(0, len(items), 25):
            sdb.batch_put("d", items[start : start + 25])
        grown = sdb.index_memory_bytes()
        assert grown > last, f"checkpoint {checkpoint}"
        last = grown


def test_array_store_beats_legacy_on_equal_data():
    """Same items into both substrates: the array store's footprint must
    already be strictly below the dict-of-sets baseline at modest size
    (the nightly 1M sweep charts the gap at scale)."""
    array_state = _ArrayDomainState()
    legacy_state = _LegacyDomainState()
    _populate_bare_state(array_state, 5000)
    _populate_bare_state(legacy_state, 5000)
    assert array_state.memory_bytes() < legacy_state.memory_bytes()
