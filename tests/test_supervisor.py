"""The SLO-driven autoscaling supervisor and the machinery it rides on:
graceful daemon retirement (commit what is complete, hand the rest back
to the WAL), deterministic exponential respawn backoff, and the adaptive
gateway window.

The control loop's end-to-end payoff — filling the static fleets' null
SLO cells — is pinned by ``benchmarks/test_autoscale_slo.py``; these
tests pin each mechanism in isolation and the supervisor's kernel
behaviour at unit scale.
"""

import pytest

from repro.cloud.account import CloudAccount
from repro.cloud.sqs import DEFAULT_VISIBILITY_TIMEOUT
from repro.core import PAS3fs, ProtocolP3, UploadMode
from repro.core.commit_daemon import CommitDaemon
from repro.obs.timeline import chrome_trace
from repro.provenance.syscalls import TraceBuilder
from repro.service import IngestGateway, Supervisor, SupervisorConfig
from repro.sim import Delay, ProcessState, SimKernel
from repro.sim.compat import run_plan_phased
from repro.workloads.base import MOUNT
from repro.workloads.fleet import make_fleet


def _sleeper():
    while True:
        yield Delay(1.0)


def _single_file_trace(size=64 * 1024):
    builder = TraceBuilder()
    writer = builder.spawn("writer", argv=["writer"], exec_path="/bin/writer")
    builder.read(writer, "/local/input.dat", 1024)
    builder.write_close(writer, f"{MOUNT}out/result.dat", size)
    builder.exit(writer)
    return builder.trace


def _wide_provenance_trace(cycles=64):
    """Provenance spanning several 8 KB WAL messages, so a daemon stopped
    mid-assembly genuinely holds an incomplete transaction."""
    builder = TraceBuilder()
    xform = builder.spawn(
        "transform",
        argv=["transform", "--passes", str(cycles)],
        env=(("TRANSFORM_OPTS", "x" * 512),),
        exec_path="/bin/transform",
    )
    for cycle in range(cycles):
        builder.read(xform, f"{MOUNT}wide/input.dat", 16 * 1024)
        builder.write(xform, f"{MOUNT}wide/output.dat", (cycle + 1) * 1024)
    builder.close(xform, f"{MOUNT}wide/output.dat")
    builder.exit(xform)
    return builder.trace


def _many_files_trace(files):
    builder = TraceBuilder()
    writer = builder.spawn("writer", argv=["writer"], exec_path="/bin/w")
    for index in range(files):
        builder.write_close(writer, f"{MOUNT}pool/f{index:02d}.dat", 4096)
    builder.exit(writer)
    return builder.trace


def _state_snapshot(account, protocol):
    """Byte-comparable committed state (same yardstick as the takeover
    test): every SimpleDB item in every shard domain plus every surviving
    S3 object's digest and metadata.  Timestamps deliberately excluded."""
    domains = {
        domain: {
            name: account.simpledb.peek_item(domain, name)
            for name in account.simpledb.peek_item_names(domain)
        }
        for domain in protocol.router.domains
    }
    objects = {
        key: (
            account.s3.peek_latest(protocol.bucket, key).blob.digest,
            tuple(
                sorted(account.s3.peek_latest(protocol.bucket, key).metadata.items())
            ),
        )
        for key in account.s3.peek_keys(protocol.bucket)
    }
    return repr((domains, objects))


def _fresh_daemon(account, protocol):
    return CommitDaemon(
        account=account,
        queue_url=protocol.queue_url,
        bucket=protocol.bucket,
        domain=protocol.domain,
        router=protocol.router,
    )


class TestRespawnBackoff:
    """Satellite: deterministic exponential backoff on respawn policies,
    defaulting to the old flat-delay behaviour."""

    def test_backoff_delays_grow_and_cap_deterministically(self):
        account = CloudAccount(seed=0)
        account.faults.schedule.crash_every(
            "svc", every_s=20.0, start_at=20.0, times=5
        )
        policy = account.faults.schedule.respawn(
            "svc", _sleeper, base_delay_s=1.0, multiplier=2.0, max_delay_s=8.0
        )
        kernel = SimKernel(account)
        kernel.spawn(_sleeper(), name="svc", daemon=True)
        kernel.run(until=110.0)

        # The n-th respawn waits base * 2**n seconds, capped at 8.
        assert [record.delay_s for record in policy.log] == [
            1.0, 2.0, 4.0, 8.0, 8.0,
        ]
        assert [record.died_at for record in policy.log] == [
            20.0, 40.0, 60.0, 80.0, 100.0,
        ]
        for record in policy.log:
            assert record.scheduled_at == record.died_at + record.delay_s
        assert policy.respawned_at == [
            record.scheduled_at for record in policy.log
        ]
        # Scheduled-vs-actual: an idle kernel activates each replacement
        # exactly when the policy scheduled it.
        incarnations = kernel.processes_named("svc")
        assert len(incarnations) == 6
        for record, replacement in zip(policy.log, incarnations[1:]):
            assert replacement.domain.started_at == pytest.approx(
                record.scheduled_at
            )

    def test_default_policy_keeps_flat_delays(self):
        account = CloudAccount(seed=0)
        account.faults.schedule.crash_every("svc", every_s=10.0, times=3)
        policy = account.faults.schedule.respawn("svc", _sleeper, delay_s=3.0)
        kernel = SimKernel(account)
        kernel.spawn(_sleeper(), name="svc", daemon=True)
        kernel.run(until=45.0)
        # No base_delay_s: every respawn waits the flat delay, exactly the
        # pre-backoff behaviour existing chaos schedules rely on.
        assert [record.delay_s for record in policy.log] == [3.0, 3.0, 3.0]
        assert policy.delay_for(0) == policy.delay_for(7) == 3.0

    def test_backoff_validation(self):
        schedule = CloudAccount(seed=0).faults.schedule
        with pytest.raises(ValueError):
            schedule.respawn("svc", _sleeper, base_delay_s=-1.0)
        with pytest.raises(ValueError):
            schedule.respawn("svc", _sleeper, base_delay_s=1.0, multiplier=0.5)
        with pytest.raises(ValueError):
            schedule.respawn("svc", _sleeper, max_delay_s=5.0)
        with pytest.raises(ValueError):
            schedule.respawn(
                "svc", _sleeper, base_delay_s=2.0, max_delay_s=1.0
            )


class TestGracefulRetirement:
    """Satellite: a daemon stopped mid-stream either finishes what it
    holds or hands it back to the WAL — never strands it behind its
    visibility timeout."""

    def test_retirement_commits_a_complete_pending_transaction(self):
        account = CloudAccount(seed=21)
        protocol = ProtocolP3(account)
        PAS3fs(account, protocol).run(_single_file_trace())
        daemon = _fresh_daemon(account, protocol)
        for message in account.sqs.receive_messages(
            protocol.queue_url, max_messages=10
        ):
            daemon._ingest(message)
        assert daemon.pending_transactions()

        run_plan_phased(account, daemon.retire_plan())
        assert daemon.retired
        assert daemon.committed_count() == 1
        assert daemon.pending_transactions() == []
        assert account.sqs.pending_count(protocol.queue_url) == 0
        assert not account.s3.peek_keys(protocol.bucket, "tmp/")

        # Byte-identical to a daemon that was never asked to stop.
        ref_account = CloudAccount(seed=21)
        ref_protocol = ProtocolP3(ref_account)
        PAS3fs(ref_account, ref_protocol).run(_single_file_trace())
        ref_protocol.commit_daemon.drain()
        assert _state_snapshot(account, protocol) == _state_snapshot(
            ref_account, ref_protocol
        )

    def test_retirement_hands_an_incomplete_transaction_back_immediately(self):
        account = CloudAccount(seed=13)
        protocol = ProtocolP3(account, mode=UploadMode.CAUSAL)
        PAS3fs(account, protocol).run(_wide_provenance_trace())
        total = account.sqs.pending_count(protocol.queue_url)
        assert total > 1

        daemon = _fresh_daemon(account, protocol)
        messages = account.sqs.receive_messages(
            protocol.queue_url, max_messages=1
        )
        daemon._ingest(messages[0])

        stopped_at = account.now
        run_plan_phased(account, daemon.retire_plan())
        assert daemon.retired
        assert daemon.committed_count() == 0
        assert daemon.pending_transactions() == []
        assert account.sqs.pending_count(protocol.queue_url) == total

        # ChangeMessageVisibility 0: the handed-back message is receivable
        # right now.  The phased drain below never advances the clock, so
        # without the handback the leased message would stay invisible
        # forever and the transaction could never complete.
        second = _fresh_daemon(account, protocol)
        stats = second.drain()
        assert stats.transactions_committed == 1
        assert stats.transactions_pending == 0
        assert account.now - stopped_at < DEFAULT_VISIBILITY_TIMEOUT

    def test_kernel_retirement_hands_over_byte_identically(self):
        """The takeover test's graceful twin: daemon A is *stopped* (not
        crashed) mid-assembly; daemon B finishes the transaction without
        waiting out A's visibility timeout, ending byte-identical."""
        # 256 cycles span six WAL messages, so one in-flight receive after
        # the stop request cannot complete the transaction by itself.
        ref_account = CloudAccount(seed=13)
        ref_protocol = ProtocolP3(ref_account, mode=UploadMode.CAUSAL)
        PAS3fs(ref_account, ref_protocol).run(_wide_provenance_trace(256))
        ref_protocol.commit_daemon.drain()
        reference = _state_snapshot(ref_account, ref_protocol)

        account = CloudAccount(seed=13)
        protocol = ProtocolP3(account, mode=UploadMode.CAUSAL)
        PAS3fs(account, protocol).run(_wide_provenance_trace(256))
        kernel = SimKernel(account)
        daemon_a = _fresh_daemon(account, protocol)
        kernel.spawn(
            daemon_a.process(poll_interval=1.0, max_messages=1),
            name="daemon-a",
            daemon=True,
        )
        guard = 0
        while not daemon_a.pending_transactions() and guard < 200:
            kernel.run(until=account.now + 0.05)
            guard += 1
        assert daemon_a.pending_transactions()

        daemon_a.request_stop()
        stopped_at = account.now
        kernel.run(until=account.now + 5.0)
        assert kernel.process("daemon-a").state is ProcessState.DONE
        assert daemon_a.retired
        assert daemon_a.committed_count() == 0

        daemon_b = _fresh_daemon(account, protocol)
        kernel.spawn(
            daemon_b.process(poll_interval=1.0), name="daemon-b", daemon=True
        )
        guard = 0
        while account.sqs.pending_count(protocol.queue_url) > 0 and guard < 200:
            kernel.run(until=account.now + 5.0)
            guard += 1
        kernel.run(until=account.now + 5.0)

        assert daemon_b.committed_count() == 1
        # The handback made the takeover immediate — B finished well
        # inside the lease A's receives would otherwise have held.
        assert account.now < stopped_at + DEFAULT_VISIBILITY_TIMEOUT
        assert _state_snapshot(account, protocol) == reference
        assert account.sqs.pending_count(protocol.queue_url) == 0
        assert not account.s3.peek_keys(protocol.bucket, "tmp/")


def _supervised_run(seed=5, files=24, crash_at=None):
    """A WAL backlog drained by a supervised pool on the kernel; returns
    everything the control-loop assertions need."""
    account = CloudAccount(seed=seed)
    protocol = ProtocolP3(account)
    PAS3fs(account, protocol).run(_many_files_trace(files))
    kernel = SimKernel(account)
    config = SupervisorConfig(
        control_interval_s=1.0,
        min_daemons=1,
        max_daemons=3,
        backlog_per_daemon=4,
        calm_ticks=2,
        respawn_base_delay_s=0.5,
        respawn_multiplier=2.0,
        respawn_max_delay_s=2.0,
        # The whole backlog lands in one burst before the pool starts, so
        # a member's first receive holds ten sequential commits; a lease
        # shorter than that window would redeliver mid-commit.  Lease
        # tuning is the benchmark's subject, not this test's.
        visibility_timeout_s=60.0,
    )
    supervisor = Supervisor(
        account,
        kernel,
        lambda: _fresh_daemon(account, protocol),
        protocol.queue_url,
        config=config,
    )
    supervisor.start()
    kernel.spawn(supervisor.process(), name="supervisor", daemon=True)
    if crash_at is not None:
        account.faults.arm_timed_crash("pool-0", at=account.now + crash_at)
    guard = 0
    while account.sqs.pending_count(protocol.queue_url) > 0 and guard < 100:
        kernel.run(until=account.now + 5.0)
        guard += 1
    # Enough further control ticks for the calm counter to retire the
    # surge members back down to the floor.
    kernel.run(until=account.now + 10.0)
    return account, protocol, kernel, supervisor


class TestSupervisorControlLoop:
    def test_scales_up_on_backlog_and_back_down_after_calm(self):
        account, protocol, kernel, supervisor = _supervised_run()
        events = account.telemetry.events

        # The backlog drove the pool up to its ceiling...
        ups = events.of_kind("supervisor.scale_up")
        assert ups
        assert ups[0]["depth"] > 0
        assert max(event["pool"] for event in ups) == 3
        # ...and calm ticks retired it back to the floor.
        downs = events.of_kind("supervisor.scale_down")
        assert len(downs) == 2
        assert {event["retired"] for event in downs} == {"pool-1", "pool-2"}
        assert sorted(supervisor.pool) == ["pool-0"]

        # Retirement was graceful: the retired incarnations returned
        # (DONE, not CRASHED/killed) and flagged themselves retired.
        for name in ("pool-1", "pool-2"):
            assert kernel.process(name).state is ProcessState.DONE
        retired = [
            daemon
            for daemon in supervisor.all_daemons
            if daemon not in supervisor.pool.values()
        ]
        assert retired and all(daemon.retired for daemon in retired)

        # Nothing lost, nothing duplicated across the elastic pool.
        committed = sum(
            daemon.committed_count() for daemon in supervisor.all_daemons
        )
        assert committed == 24
        assert account.sqs.pending_count(protocol.queue_url) == 0
        assert not account.s3.peek_keys(protocol.bucket, "tmp/")

        # The pool-size gauge reflects the settled floor.
        snapshot = account.telemetry.metrics.snapshot()
        pool_sizes = [
            value
            for key, value in snapshot.items()
            if key.startswith("supervisor.pool_size")
        ]
        assert pool_sizes == [1]

    def test_member_crash_respawns_with_backoff_and_identical_state(self):
        reference_account, reference_protocol, _, _ = _supervised_run()
        reference = _state_snapshot(reference_account, reference_protocol)

        account, protocol, kernel, supervisor = _supervised_run(crash_at=2.5)
        policy = account.faults.schedule.respawns["pool-0"]
        assert policy.respawns == 1
        record = policy.log[0]
        assert record.delay_s == 0.5  # the configured backoff base
        assert record.scheduled_at == record.died_at + 0.5

        backoffs = account.telemetry.events.of_kind("supervisor.backoff")
        assert len(backoffs) == 1
        assert backoffs[0]["target"] == "pool-0"
        assert backoffs[0]["delay_s"] == 0.5
        assert backoffs[0]["respawn_index"] == 0

        # The kill cost nothing: the replacement (plus the surge members)
        # committed everything, byte-identical to the uncrashed run.
        committed = sum(
            daemon.committed_count() for daemon in supervisor.all_daemons
        )
        assert committed == 24
        assert _state_snapshot(account, protocol) == reference

    def test_pool_target_clamps_to_max(self):
        account = CloudAccount(seed=3)
        kernel = SimKernel(account)
        queue_url = account.sqs.create_queue("wal")
        for index in range(30):
            account.sqs.send_message(queue_url, f"backlog-{index}")
        config = SupervisorConfig(max_daemons=3, backlog_per_daemon=4)
        supervisor = Supervisor(
            account,
            kernel,
            lambda: CommitDaemon(
                account=account, queue_url=queue_url, bucket="b", domain="d"
            ),
            queue_url,
            config=config,
        )
        supervisor.start()
        supervisor.control_tick(account.now)
        # ceil(30 / 4) = 8, clamped to the ceiling of 3.
        assert sorted(supervisor.pool) == ["pool-0", "pool-1", "pool-2"]
        assert set(account.faults.schedule.respawns) >= set(supervisor.pool)
        ups = account.telemetry.events.of_kind("supervisor.scale_up")
        assert ups[-1]["target"] == 3

    def test_configuration_validation(self):
        account = CloudAccount(seed=0)
        kernel = SimKernel(account)
        queue_url = account.sqs.create_queue("wal")
        factory = lambda: CommitDaemon(
            account=account, queue_url=queue_url, bucket="b", domain="d"
        )
        with pytest.raises(ValueError):
            Supervisor(
                account, kernel, factory, queue_url,
                config=SupervisorConfig(min_daemons=0),
            )
        with pytest.raises(ValueError):
            Supervisor(
                account, kernel, factory, queue_url,
                config=SupervisorConfig(min_daemons=3, max_daemons=2),
            )
        supervisor = Supervisor(account, kernel, factory, queue_url)
        with pytest.raises(ValueError):
            supervisor.start(initial=0)
        with pytest.raises(ValueError):
            supervisor.start(initial=99)


class TestAdaptiveGatewayWindow:
    def test_window_halves_under_backlog_and_doubles_back(self):
        account = CloudAccount(seed=7)
        kernel = SimKernel(account)
        queue_url = account.sqs.create_queue("wal")
        gateway = IngestGateway(account)
        config = SupervisorConfig(
            window_high_pending=4,
            window_low_pending=1,
            min_window_s=0.0625,
            max_window_s=0.5,
        )
        supervisor = Supervisor(
            account,
            kernel,
            lambda: CommitDaemon(
                account=account, queue_url=queue_url, bucket="b", domain="d"
            ),
            queue_url,
            gateway=gateway,
            config=config,
        )
        supervisor.start()
        assert gateway.window_s == 0.25

        for client in make_fleet(clients=6, files_per_client=1, seed=7):
            gateway.submit(client.client_id, client.works[0])
        assert gateway.pending_count() == 6

        supervisor.control_tick(account.now)
        assert gateway.window_s == 0.125
        supervisor.control_tick(account.now)
        assert gateway.window_s == 0.0625
        supervisor.control_tick(account.now)
        assert gateway.window_s == 0.0625  # clamped at the floor

        gateway.flush_pending()
        assert gateway.pending_count() == 0
        supervisor.control_tick(account.now)
        assert gateway.window_s == 0.125
        supervisor.control_tick(account.now)
        assert gateway.window_s == 0.25
        supervisor.control_tick(account.now)
        assert gateway.window_s == 0.5
        supervisor.control_tick(account.now)
        assert gateway.window_s == 0.5  # clamped at the ceiling

        adjusts = account.telemetry.events.of_kind("supervisor.window_adjust")
        assert [event["window_s"] for event in adjusts] == [
            0.125, 0.0625, 0.125, 0.25, 0.5,
        ]
        for event in adjusts:
            assert event["previous_s"] != event["window_s"]

        snapshot = account.telemetry.metrics.snapshot()
        windows = [
            value
            for key, value in snapshot.items()
            if key.startswith("supervisor.target_window_s")
        ]
        assert windows == [0.5]

    def test_set_window_rejects_nonpositive(self):
        account = CloudAccount(seed=0)
        gateway = IngestGateway(account)
        with pytest.raises(ValueError):
            gateway.set_window(0.0)
        with pytest.raises(ValueError):
            gateway.set_window(-1.0)


class TestSupervisorTimeline:
    def test_chrome_trace_grows_a_supervisor_lane(self):
        account, _, _, _ = _supervised_run(crash_at=2.5)
        doc = chrome_trace(account.telemetry)
        events = doc["traceEvents"]

        lane_names = {
            event["args"]["name"]: event["tid"]
            for event in events
            if event["ph"] == "M" and event["name"] == "thread_name"
        }
        assert "supervisor" in lane_names
        supervisor_tid = lane_names["supervisor"]
        # The respawned member shows up as a fresh lane beside its
        # ancestor, like any other chaos run.
        assert "pool-0" in lane_names and "pool-0#1" in lane_names

        marks = [
            event
            for event in events
            if event.get("cat") == "supervisor"
        ]
        assert marks
        assert {event["ph"] for event in marks} == {"i"}
        assert {event["tid"] for event in marks} == {supervisor_tid}
        kinds = {event["name"] for event in marks}
        assert "supervisor.scale_up" in kinds
        assert "supervisor.scale_down" in kinds
        assert "supervisor.backoff" in kinds
