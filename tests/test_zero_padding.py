"""The select grammar's zero-padding caveat, pinned on both backends.

SimpleDB compares every value lexicographically (§4.3.2): range queries
over numbers are only correct when the numbers are stored zero-padded
to fixed width.  The protocols honour this (versions and mtimes are
written padded); the grammar documents it; this battery is the test
that actually holds it down:

- padded ``version``/``mtime`` range queries (``between``, ``>=``,
  ``<=``, and their compositions) return exactly the rows a Python
  full scan predicts, with the indexed planner and the
  ``use_indexes=False`` scan agreeing row for row,
- the same expressions return byte-identical rows, ordering, and
  billing on the simulated and local-sqlite backends,
- the caveat itself is real: the same ranges over an *unpadded* copy of
  the attribute drop/add rows exactly where lexicographic order diverges
  from numeric order (``"10" < "2"``).
"""

import pytest

from repro.cloud.account import CloudAccount

DOMAIN = "zp"

#: (item name, numeric version, numeric mtime) — versions cross the
#: 1→2-digit and 2→3-digit boundaries where lexicographic order breaks.
ROWS = [(f"it{i:03d}", i, 100 + 37 * i) for i in range(0, 130, 3)]

PAD_QUERIES = [
    "select * from zp where version between '0010' and '0100'",
    "select * from zp where version >= '0021' and version <= '0063'",
    "select * from zp where mtime between '000100' and '000999'",
    "select * from zp where mtime >= '001000'",
    "select * from zp where version > '0009' and mtime < '003000'",
    "select * from zp where version <= '0030' or version >= '0120'",
]


def _populate(account):
    sdb = account.simpledb
    sdb.create_domain(DOMAIN)
    items = []
    for name, version, mtime in ROWS:
        items.append(
            (
                name,
                [
                    ("version", f"{version:04d}"),
                    ("rawver", str(version)),
                    ("mtime", f"{mtime:06d}"),
                    ("type", "file"),
                ],
            )
        )
    for start in range(0, len(items), 25):
        sdb.batch_put(DOMAIN, items[start : start + 25])
    account.settle(120.0)
    return sdb


def _indexed_and_scan(account, sdb, expression):
    sdb.use_indexes = True
    indexed = sdb.select(expression)
    sdb.use_indexes = False
    scanned = sdb.select(expression)
    sdb.use_indexes = True
    assert indexed == scanned, expression
    return indexed


@pytest.fixture(params=["sim", "local"])
def padded_account(request):
    account = CloudAccount(seed=77, backend=request.param)
    yield account
    account.close()


class TestPaddedRangesAgreeWithScan:
    @pytest.mark.parametrize("expression", PAD_QUERIES)
    def test_padded_query_matches_python_scan(self, padded_account, expression):
        sdb = _populate(padded_account)
        rows = _indexed_and_scan(padded_account, sdb, expression)
        got = {name for name, _ in rows}
        # Reference semantics: evaluate the same ranges numerically.
        def keep(version, mtime):
            checks = {
                PAD_QUERIES[0]: 10 <= version <= 100,
                PAD_QUERIES[1]: 21 <= version <= 63,
                PAD_QUERIES[2]: 100 <= mtime <= 999,
                PAD_QUERIES[3]: mtime >= 1000,
                PAD_QUERIES[4]: version > 9 and mtime < 3000,
                PAD_QUERIES[5]: version <= 30 or version >= 120,
            }
            return checks[expression]

        expected = {name for name, v, m in ROWS if keep(v, m)}
        assert got == expected, expression

    def test_rows_come_back_in_item_name_order(self, padded_account):
        sdb = _populate(padded_account)
        rows = _indexed_and_scan(
            padded_account, sdb, PAD_QUERIES[0]
        )
        names = [name for name, _ in rows]
        assert names == sorted(names)


class TestCrossBackendAgreement:
    def test_padded_queries_identical_sim_vs_local(self):
        fingerprints = {}
        for backend in ("sim", "local"):
            account = CloudAccount(seed=77, backend=backend)
            sdb = _populate(account)
            per_query = []
            for expression in PAD_QUERIES:
                ops_before = account.billing.operation_count()
                bytes_before = account.billing.bytes_received()
                rows = sdb.select(expression)
                per_query.append(
                    (
                        expression,
                        repr(rows),
                        account.billing.operation_count() - ops_before,
                        account.billing.bytes_received() - bytes_before,
                    )
                )
            fingerprints[backend] = per_query
            account.close()
        assert fingerprints["sim"] == fingerprints["local"]


class TestTheCaveatIsReal:
    def test_unpadded_ranges_follow_lexicographic_order(self, padded_account):
        """The documented failure mode: over the unpadded copy of the
        same numbers, '10' < '2', so numeric ranges break — identically
        on both backends, identically indexed and scanned."""
        sdb = _populate(padded_account)
        expression = "select * from zp where rawver between '10' and '2'"
        rows = _indexed_and_scan(padded_account, sdb, expression)
        got = {name for name, _ in rows}
        expected = {
            name for name, v, _ in ROWS if "10" <= str(v) <= "2"
        }
        assert got == expected
        # The lexicographic window really is numerically wrong: it holds
        # 10..199 and 2 but excludes 3..9 — the caveat the padded
        # queries above never hit.
        assert "it012" in got and "it102" in got  # 12, 102 lex-inside
        assert "it003" not in got and "it009" not in got  # 3, 9 lex-outside
        numeric = {name for name, v, _ in ROWS if 2 <= v <= 10}
        assert got != numeric

    def test_padding_restores_numeric_semantics(self, padded_account):
        sdb = _populate(padded_account)
        rows = _indexed_and_scan(
            padded_account,
            sdb,
            "select * from zp where version between '0002' and '0010'",
        )
        got = {name for name, _ in rows}
        assert got == {name for name, v, _ in ROWS if 2 <= v <= 10}
