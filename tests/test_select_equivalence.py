"""Indexed-vs-scan equivalence on the real workloads.

The acceptance contract for the indexed select engine: over provenance
produced by the paper's own pipelines — the Figure 3 Blast microbenchmark
and the multi-tenant fleet — Q1–Q4 answers, row ordering, and billed
request/byte counts are byte-identical between the indexed planner and
the ``use_indexes=False`` scan fallback.
"""

from repro.cloud.account import CloudAccount
from repro.query.engine import ShardedSimpleDBQueryEngine, SimpleDBQueryEngine
from repro.service import IngestGateway, ShardRouter
from repro.workloads import make_blast_workload, run_microbenchmark
from repro.workloads.fleet import FLEET_PROGRAM, make_fleet, run_fleet


def _query_fingerprint(account, engine, target_path, program):
    """(answers repr, simpledb Select count delta, byte delta) for one
    full Q1–Q4 pass."""
    ops_before = account.billing.snapshot().get("simpledb", {}).get("Select", 0)
    bytes_before = account.billing.bytes_received() + account.billing.bytes_transmitted()
    q1, _ = engine.q1_all_provenance()
    q2, _ = engine.q2_object_provenance(target_path)
    q3, _ = engine.q3_direct_outputs(program)
    q4, _ = engine.q4_all_descendants(program)
    answers = repr(
        (
            sorted((str(ref), engine_attrs) for ref in q1.refs()
                   for engine_attrs in [q1.attributes(ref)]),
            q2,
            q3,
            q4,
        )
    )
    ops = account.billing.snapshot()["simpledb"]["Select"] - ops_before
    moved = (
        account.billing.bytes_received()
        + account.billing.bytes_transmitted()
        - bytes_before
    )
    return answers, ops, moved


def test_fig3_queries_identical_indexed_vs_scan():
    account = CloudAccount(seed=7)
    workload = make_blast_workload(jobs=3, queries_per_job=40)
    run_microbenchmark(workload, "p2", account=account)
    account.settle(120.0)
    engine = SimpleDBQueryEngine(account)
    target = "/mnt/s3/blast/job-000/raw.hits"

    account.simpledb.use_indexes = True
    indexed = _query_fingerprint(account, engine, target, "blastall")
    account.simpledb.use_indexes = False
    scanned = _query_fingerprint(account, engine, target, "blastall")
    account.simpledb.use_indexes = True

    assert indexed == scanned
    # The planner really ran: the selective Q2–Q4 chains were indexed.
    assert account.simpledb.select_stats.indexed > 0
    assert account.simpledb.select_stats.scanned > 0  # the scan pass


def test_multitenant_sharded_queries_identical_indexed_vs_scan():
    account = CloudAccount(seed=3)
    router = ShardRouter(shards=2)
    gateway = IngestGateway(account, router)
    fleet = make_fleet(clients=8, files_per_client=3, seed=3)
    run_fleet(account, gateway, fleet, seed=3)
    account.settle(120.0)
    engine = ShardedSimpleDBQueryEngine(account, router)
    target = "/mnt/s3/fleet/c0000/f000.dat"

    account.simpledb.use_indexes = True
    indexed = _query_fingerprint(account, engine, target, FLEET_PROGRAM)
    account.simpledb.use_indexes = False
    scanned = _query_fingerprint(account, engine, target, FLEET_PROGRAM)
    account.simpledb.use_indexes = True

    assert indexed == scanned
