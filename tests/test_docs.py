"""The docs tree is part of the contract: intra-repo links must
resolve, and the snippets marked as doctests must run.

CI's docs job runs the same two checks standalone (`python -m doctest`
over the doc files plus a link sweep); this test keeps them inside
tier-1 so a broken doc fails locally before it fails in CI.
"""

import doctest
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Every markdown file whose links and doctests we enforce.
DOC_FILES = sorted(
    [REPO_ROOT / "README.md"] + list((REPO_ROOT / "docs").glob("*.md"))
)

_LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")


def _doc_ids():
    return [str(path.relative_to(REPO_ROOT)) for path in DOC_FILES]


def test_docs_tree_exists():
    names = {path.name for path in DOC_FILES}
    assert {"README.md", "architecture.md", "faults.md", "benchmarks.md"} \
        <= names


@pytest.mark.parametrize("doc", DOC_FILES, ids=_doc_ids())
def test_intra_repo_links_resolve(doc):
    text = doc.read_text(encoding="utf-8")
    broken = []
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        resolved = (doc.parent / path).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{doc.name}: dead intra-repo links {broken}"


@pytest.mark.parametrize("doc", DOC_FILES, ids=_doc_ids())
def test_doc_snippets_marked_as_doctests_run(doc):
    text = doc.read_text(encoding="utf-8")
    if ">>>" not in text:
        pytest.skip(f"{doc.name} has no doctest snippets")
    # The same semantics as `python -m doctest <file>`: parse the whole
    # text for >>> examples and run them.
    parser = doctest.DocTestParser()
    test = parser.get_doctest(
        text, {"__name__": "__main__"}, doc.name, str(doc), 0
    )
    runner = doctest.DocTestRunner(verbose=False)
    runner.run(test)
    results = runner.summarize(verbose=False)
    assert results.failed == 0, (
        f"{doc.name}: {results.failed} doctest(s) failed "
        f"(run `PYTHONPATH=src python -m doctest {doc.name}` for detail)"
    )
    assert results.attempted > 0
