"""The cross-backend differential matrix (the ISSUE's headline artifact).

Every test here replays one workload twice — once on the in-memory
simulated backend, once on the local sqlite/filesystem/queue backend —
and asserts the outcomes byte-identical: answer rows and their order,
query billing, and canonical store fingerprints.  The batteries are the
repo's heaviest existing workloads:

- the fig3 Blast replay, every configuration, EC2 and UML environments,
- the seeded select-fuzz battery (the full 220-tree run; set
  ``REPRO_BACKEND_FUZZ_SEEDS=all`` for all three batteries including the
  mid-propagation and delete-interleaved ones),
- the chaos crash/respawn fleet run (commit daemons killed and
  respawned mid-flight, SQS redelivery, Q1-Q4 over the settled store).

Everything is marked ``backend`` and excluded from tier-1 by the
pytest.ini default (``-m "not backend"``); the CI ``backend-parity``
job re-selects it.  ``REPRO_BACKEND_SCALE`` scales the fig3 replay
(default 0.1 — the smoke size).
"""

import os
import random

import pytest

from repro.backends.parity import s3_fingerprint, store_fingerprint
from repro.bench.experiments import (
    CONFIGURATIONS,
    _workload_by_name,
    chaos_fleet_run,
)
from repro.cloud.account import CloudAccount
from repro.cloud.blob import Blob
from repro.cloud.consistency import ConsistencyModel
from repro.cloud.profiles import EC2_ENV, UML_ENV, SimulationProfile
from repro.workloads.microbench import run_microbenchmark

from test_select_fuzz import (
    TREE_COUNT,
    _fingerprint,
    _random_tree,
    _seed_store,
    _select_frozen,
)

pytestmark = pytest.mark.backend

SCALE = float(os.environ.get("REPRO_BACKEND_SCALE", "0.1"))
FUZZ_ALL = os.environ.get("REPRO_BACKEND_FUZZ_SEEDS", "") == "all"

ENVIRONMENTS = {"ec2": EC2_ENV, "uml": UML_ENV}


# -- fig3: the Blast replay, every configuration --------------------------------


@pytest.mark.parametrize("env_name", sorted(ENVIRONMENTS))
@pytest.mark.parametrize("config", CONFIGURATIONS)
def test_fig3_config_is_byte_identical(env_name, config):
    workload = _workload_by_name("blast", SCALE)
    profile = SimulationProfile().with_environment(ENVIRONMENTS[env_name])
    outcomes = {}
    for backend in ("sim", "local"):
        account = CloudAccount(profile=profile, seed=0, backend=backend)
        result = run_microbenchmark(
            workload, config, profile=profile, seed=0, account=account
        )
        account.settle(120.0)
        q1_rows = []
        for domain in sorted(account.simpledb._domains):
            q1_rows.append(
                (domain, repr(account.simpledb.select(f"select * from {domain}")))
            )
        outcomes[backend] = (result, q1_rows, store_fingerprint(account))
        account.close()
    assert outcomes["sim"] == outcomes["local"]


# -- the select-fuzz batteries ---------------------------------------------------


def _fuzz_strict(backend, seed):
    account = CloudAccount(
        consistency=ConsistencyModel.STRICT, seed=seed, backend=backend
    )
    rng = random.Random(seed)
    sdb = account.simpledb
    _seed_store(sdb, rng)
    out = []
    for _index in range(TREE_COUNT):
        expression = "select * from d where " + _random_tree(
            rng, rng.randrange(4)
        )
        out.append((expression, _fingerprint(account, sdb, expression)))
    out.append(store_fingerprint(account))
    account.close()
    return out


def _fuzz_eventual(backend, seed):
    account = CloudAccount(seed=seed, backend=backend)
    rng = random.Random(seed)
    sdb = account.simpledb
    _seed_store(sdb, rng)
    out = []
    for index in range(TREE_COUNT):
        expression = "select * from d where " + _random_tree(
            rng, rng.randrange(4)
        )
        if index % 20 == 0:
            account.settle(1.5)
        out.append((expression, repr(_select_frozen(account, sdb, expression))))
    out.append(store_fingerprint(account))
    account.close()
    return out


def _fuzz_deletes(backend, seed):
    account = CloudAccount(
        consistency=ConsistencyModel.STRICT, seed=seed, backend=backend
    )
    rng = random.Random(seed)
    sdb = account.simpledb
    _seed_store(sdb, rng)
    out = []
    for index in range(TREE_COUNT):
        expression = "select * from d where " + _random_tree(
            rng, rng.randrange(4)
        )
        if index % 25 == 10:
            victim = f"u{rng.randrange(20):03d}_{rng.randrange(3)}"
            spec = rng.choice(
                [None, ["tag"], [("version", f"{rng.randrange(3):03d}")]]
            )
            sdb.delete_attributes("d", victim, spec)
        out.append((expression, _fingerprint(account, sdb, expression)))
    out.append(store_fingerprint(account))
    account.close()
    return out


def test_select_fuzz_battery_is_byte_identical():
    """One full 220-tree seeded battery, sim vs local, per-tree rows
    and billing identical (the smoke-size default: seed 97, strict)."""
    assert _fuzz_strict("sim", 97) == _fuzz_strict("local", 97)


@pytest.mark.skipif(
    not FUZZ_ALL, reason="set REPRO_BACKEND_FUZZ_SEEDS=all for the full sweep"
)
def test_select_fuzz_all_batteries_are_byte_identical():
    assert _fuzz_eventual("sim", 131) == _fuzz_eventual("local", 131)
    assert _fuzz_deletes("sim", 7) == _fuzz_deletes("local", 7)


# -- chaos crash/respawn ---------------------------------------------------------


@pytest.mark.parametrize("schedule", ["steady", "crashes"])
def test_chaos_run_is_byte_identical(schedule):
    """The recovery battery: daemons crash and respawn mid-run, SQS
    redelivers, and the settled stores must still answer Q1-Q4 and
    fingerprint identically across backends."""
    outcomes = {
        backend: chaos_fleet_run(
            clients=2,
            files_per_client=2,
            schedule=schedule,
            seed=3,
            backend=backend,
        )
        for backend in ("sim", "local")
    }
    sim, local = outcomes["sim"], outcomes["local"]
    assert sim.answers == local.answers
    assert sim.query_billing == local.query_billing
    assert sim.store_fingerprint
    assert sim.store_fingerprint == local.store_fingerprint
    assert sim.point == local.point


# -- the local backend is really on disk ----------------------------------------


def test_local_rows_and_files_actually_persist():
    """Not just equal answers: the local backend's state is genuinely in
    sqlite and on the filesystem, and survives a full account restart."""
    import tempfile

    root = tempfile.mkdtemp(prefix="repro-matrix-")
    first = CloudAccount(seed=5, backend="local", backend_root=root)
    first.simpledb.create_domain("m")
    first.simpledb.put_attributes("m", "item", [("k", "v")])
    first.s3.create_bucket("b")
    first.s3.put("b", "real.txt", Blob.from_text("bytes on disk"))
    url = first.sqs.create_queue("q")
    first.sqs.send_message(url, "queued")
    first.settle(120.0)
    assert first.simpledb.stored_version_count("m") == 1
    assert first.s3.stored_object_dir("b", "real.txt").is_dir()
    assert first.sqs.stored_message_count(url) == 1
    fp = store_fingerprint(first, queue_urls=[url])
    first.close()

    # A brand-new account over the same root sees the identical store.
    second = CloudAccount(seed=5, backend="local", backend_root=root)
    second.settle(120.0)
    assert second.simpledb.select("select * from m") == [
        ("item", {"k": ["v"]})
    ]
    assert second.s3.get("b", "real.txt")[0].text() == "bytes on disk"
    assert store_fingerprint(second, queue_urls=[url]) == fp
    second.close()
    import shutil

    shutil.rmtree(root)


def test_streaming_put_get_round_trip():
    """The local S3's streaming API: chunked upload and download of a
    payload that never sits in one Python bytes object on the way in."""
    import io

    account = CloudAccount(seed=9, backend="local")
    account.s3.create_bucket("b")
    payload = bytes(range(256)) * 1024  # 256 KiB, multiple chunks
    blob = account.s3.put_stream(
        "b", "stream.bin", io.BytesIO(payload), {"kind": "stream"},
        chunk_bytes=16 * 1024,
    )
    assert blob.size == len(payload)
    account.settle(120.0)
    sink = io.BytesIO()
    size, metadata = account.s3.get_stream("b", "stream.bin", sink)
    assert sink.getvalue() == payload
    assert size == len(payload)
    assert metadata == {"kind": "stream"}
    # The streamed object fingerprints like any other object.
    assert s3_fingerprint(account.s3, ["b"])
    account.close()
