"""Smoke tests for the benchmark experiments (scaled down).

The full-scale runs live in ``benchmarks/``; these verify the experiment
plumbing produces sane structures quickly.
"""

import pytest

from repro.bench.experiments import (
    ablation_chunk_size,
    fig4_workloads,
    table1_properties,
    table2_service_throughput,
    table4_cost,
)
from repro.bench.harness import Aggregate, aggregate, repeat_with_seeds
from repro.bench.reporting import render_series, render_table


class TestHarness:
    def test_aggregate(self):
        agg = aggregate([1.0, 2.0, 3.0])
        assert agg.mean == pytest.approx(2.0)
        assert agg.stddev == pytest.approx(1.0)
        assert agg.error_bar > 0

    def test_aggregate_single_sample(self):
        agg = aggregate([5.0])
        assert agg.mean == 5.0
        assert agg.error_bar == 0.0

    def test_aggregate_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate([])

    def test_repeat_with_seeds_varies_seed(self):
        seeds = []
        repeat_with_seeds(lambda seed: seeds.append(seed) or 1.0, repeats=3)
        assert len(set(seeds)) == 3


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table(("A", "Blah"), [("x", 1), ("longer", 22)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "longer" in text
        assert len({len(l) for l in lines[2:]}) <= 2

    def test_render_series(self):
        text = render_series("S", ["a", "b"], [1.0, 2.0])
        assert "#" in text and "a" in text


class TestExperimentsSmoke:
    def test_table1(self):
        result = table1_properties()
        assert "P1" in result.render().upper()

    def test_table2_small(self):
        result = table2_service_throughput(target_bytes=1024 * 1024)
        assert result.seconds["sqs"] < result.seconds["s3"]
        assert result.seconds["s3"] < result.seconds["simpledb"]

    def test_fig4_tiny(self):
        result = fig4_workloads(
            scale=0.08,
            workloads=("nightly",),
            environments=("uml",),
            periods=("dec09",),
        )
        assert len(result.cells) == 1
        below, total = result.overhead_summary()
        assert total == 3
        assert "nightly" in result.render()

    def test_table4_tiny(self):
        result = table4_cost(scale=0.08)
        for workload in ("nightly", "blast", "challenge"):
            for config in ("s3fs", "p1", "p2", "p3"):
                assert result.costs[workload][config] > 0

    def test_chunk_ablation_small(self):
        result = ablation_chunk_size(target_bytes=512 * 1024)
        sizes = [chunk for chunk, _, _ in result.points]
        assert sizes == sorted(sizes)
        assert "8192" in result.render()
