"""Equivalence regression tests: the kernel's compatibility mode must
reproduce the pre-kernel phased driver's numbers byte for byte.

The compatibility mode is a single client process on the kernel, daemons
drained at the end — the same effect plans, the other driver.  If these
tests fail, the refactor changed the physics, not just the execution
model."""

import pytest

from repro.cloud.account import CloudAccount
from repro.core import PAS3fs, ProtocolP3, UploadMode
from repro.provenance.syscalls import TraceBuilder
from repro.service import IngestGateway, ShardRouter
from repro.sim import Delay, SimKernel, run_plan_phased
from repro.sim.events import Batch
from repro.workloads import make_blast_workload
from repro.workloads.base import MOUNT
from repro.workloads.fleet import (
    make_fleet,
    run_fleet,
    run_fleet_compat_kernel,
)
from repro.workloads.microbench import (
    run_microbenchmark,
    run_microbenchmark_kernel,
)


class TestMicrobenchmarkEquivalence:
    """Satellite: the Figure 3 microbenchmark is identical under the
    kernel's compatibility mode."""

    @pytest.mark.parametrize("configuration", ["s3fs", "p1", "p2", "p3"])
    def test_fig3_numbers_identical(self, configuration):
        workload = make_blast_workload(jobs=2, queries_per_job=30)
        phased = run_microbenchmark(workload, configuration, seed=0)
        kernel = run_microbenchmark_kernel(workload, configuration, seed=0)
        assert kernel == phased  # every field, including elapsed seconds


class TestMultitenantEquivalence:
    """Satellite: the multitenant scaling benchmark's fleet drive loop is
    identical under the kernel's compatibility mode."""

    @pytest.mark.parametrize("shards", [1, 2])
    def test_fleet_numbers_identical(self, shards):
        def drive(runner):
            account = CloudAccount(seed=0)
            gateway = IngestGateway(account, ShardRouter(shards=shards))
            fleet = make_fleet(
                clients=8, files_per_client=3, extra_attributes=16, seed=0
            )
            result = runner(account, gateway, fleet, seed=0)
            return result, gateway.stats

        phased, phased_stats = drive(run_fleet)
        compat, compat_stats = drive(run_fleet_compat_kernel)
        assert compat == phased
        assert compat_stats.windows == phased_stats.windows
        assert compat_stats.sdb_batches == phased_stats.sdb_batches
        assert compat_stats.sdb_batches_saved == phased_stats.sdb_batches_saved


class TestP3FlushEquivalence:
    """flush_plan on the kernel issues identical traffic to the phased
    flush: elapsed time, operations, bytes, and committed state."""

    @staticmethod
    def _trace():
        builder = TraceBuilder()
        proc = builder.spawn("writer", argv=["writer"], exec_path="/bin/writer")
        builder.read(proc, "/local/in.dat", 2048)
        for index in range(3):
            builder.write_close(proc, f"{MOUNT}eq/f{index}.dat", 48 * 1024)
        builder.exit(proc)
        return builder.trace

    @staticmethod
    def _capture_works(account):
        """Collect the flush works a PAS3fs run would issue, without
        executing any cloud traffic."""
        from repro.core.protocol_base import FlushWork
        from repro.provenance.pass_collector import FlushIntent, PassCollector

        collector = PassCollector()
        works = []
        for event in TestP3FlushEquivalence._trace():
            for intent in collector.feed(event):
                if isinstance(intent, FlushIntent) and intent.path.startswith(MOUNT):
                    works.append(
                        FlushWork(
                            primary=intent,
                            bundles=collector.pop_pending_closure(intent.uuid),
                        )
                    )
        return works

    def _snapshot(self, account, protocol):
        domain_items = {
            name: account.simpledb.peek_item(protocol.domain, name)
            for name in account.simpledb.peek_item_names(protocol.domain)
        }
        keys = account.s3.peek_keys(protocol.bucket)
        objects = {
            key: (
                record.blob.digest,
                tuple(sorted(record.metadata.items())),
            )
            for key in keys
            for record in [account.s3.peek_latest(protocol.bucket, key)]
        }
        return repr((domain_items, objects))

    def test_flush_plan_matches_phased_flush(self):
        # Phased: flush() per work, daemon drained afterwards.
        phased_account = CloudAccount(seed=5)
        phased_p3 = ProtocolP3(phased_account, mode=UploadMode.PARALLEL)
        for work in self._capture_works(phased_account):
            phased_p3.flush(work)
        phased_elapsed = phased_account.now
        phased_p3.finalize()

        # Kernel compatibility mode: one client process over flush_plan,
        # daemon drained afterwards.
        kernel_account = CloudAccount(seed=5)
        kernel_p3 = ProtocolP3(kernel_account, mode=UploadMode.PARALLEL)
        kernel = SimKernel(kernel_account)

        def client():
            for work in self._capture_works(kernel_account):
                yield from kernel_p3.flush_plan(work)

        kernel.spawn(client(), name="client")
        kernel.run()
        kernel_elapsed = kernel_account.now
        kernel_p3.finalize()

        assert kernel_elapsed == phased_elapsed
        assert (
            kernel_account.billing.operation_count()
            == phased_account.billing.operation_count()
        )
        assert (
            kernel_account.billing.bytes_transmitted()
            == phased_account.billing.bytes_transmitted()
        )
        assert self._snapshot(kernel_account, kernel_p3) == self._snapshot(
            phased_account, phased_p3
        )


class TestP1P2FlushEquivalence:
    """P1/P2 flushes ported to effect plans (the mixed-protocol fleet
    prerequisite) issue identical traffic to the phased flush in both
    upload modes: elapsed time, operations, bytes, committed state."""

    @pytest.mark.parametrize("protocol_name", ["p1", "p2"])
    @pytest.mark.parametrize(
        "mode", [UploadMode.PARALLEL, UploadMode.CAUSAL]
    )
    def test_flush_plan_matches_phased_flush(self, protocol_name, mode):
        from repro.core import ProtocolP1, ProtocolP2

        protocol_cls = {"p1": ProtocolP1, "p2": ProtocolP2}[protocol_name]
        capture = TestP3FlushEquivalence._capture_works

        def snapshot(account, protocol):
            objects = {
                key: (
                    record.blob.digest,
                    tuple(sorted(record.metadata.items())),
                )
                for key in account.s3.peek_keys(protocol.bucket)
                for record in [account.s3.peek_latest(protocol.bucket, key)]
            }
            items = {}
            if hasattr(protocol, "domain"):
                items = {
                    name: account.simpledb.peek_item(protocol.domain, name)
                    for name in account.simpledb.peek_item_names(
                        protocol.domain
                    )
                }
            return repr((items, objects))

        phased_account = CloudAccount(seed=5)
        phased = protocol_cls(phased_account, mode=mode)
        for work in capture(phased_account):
            phased.flush(work)
        phased_elapsed = phased_account.now

        kernel_account = CloudAccount(seed=5)
        kernel_protocol = protocol_cls(kernel_account, mode=mode)
        kernel = SimKernel(kernel_account)

        def client():
            for work in capture(kernel_account):
                yield from kernel_protocol.flush_plan(work)

        kernel.spawn(client(), name="client")
        kernel.run()

        assert kernel_account.now == phased_elapsed
        assert (
            kernel_account.billing.operation_count()
            == phased_account.billing.operation_count()
        )
        assert (
            kernel_account.billing.bytes_transmitted()
            == phased_account.billing.bytes_transmitted()
        )
        assert snapshot(kernel_account, kernel_protocol) == snapshot(
            phased_account, phased
        )


class TestPhasedPlanDriver:
    """run_plan_phased maps effects onto the pre-kernel semantics."""

    def test_delay_advances_clock_and_batch_respects_advance_clock(self):
        account = CloudAccount()
        account.s3.create_bucket("b")

        def plan():
            from repro.cloud.blob import Blob

            yield Delay(3.0)
            yield Batch(
                [account.s3.put_request("b", "k", Blob.synthetic(512, "k"))],
                connections=1,
            )
            return "done"

        result = run_plan_phased(account, plan(), advance_clock=False)
        assert result == "done"
        # The delay advanced the clock; the uncharged batch did not.
        assert account.now == pytest.approx(3.0)
        assert account.billing.operation_count() == 1

    def test_unknown_effect_rejected(self):
        account = CloudAccount()

        def plan():
            yield object()

        with pytest.raises(TypeError):
            run_plan_phased(account, plan())
