"""Tests for the virtual clock."""

import pytest

from repro.cloud.clock import Stopwatch, VirtualClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_custom_start(self):
        assert VirtualClock(start=5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock(start=-1.0)

    def test_advance(self):
        clock = VirtualClock()
        assert clock.advance(2.5) == 2.5
        assert clock.advance(0.5) == 3.0
        assert clock.now == 3.0

    def test_advance_zero_is_noop(self):
        clock = VirtualClock()
        clock.advance(0.0)
        assert clock.now == 0.0

    def test_negative_advance_rejected(self):
        clock = VirtualClock()
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_advance_to(self):
        clock = VirtualClock()
        clock.advance_to(10.0)
        assert clock.now == 10.0

    def test_advance_to_past_is_noop(self):
        clock = VirtualClock(start=10.0)
        clock.advance_to(5.0)
        assert clock.now == 10.0

    def test_monotonic_under_mixed_ops(self):
        clock = VirtualClock()
        last = clock.now
        for step in (1.0, 0.0, 3.5):
            clock.advance(step)
            assert clock.now >= last
            last = clock.now
        clock.advance_to(last - 1)
        assert clock.now == last


class TestStopwatch:
    def test_elapsed(self):
        clock = VirtualClock()
        stopwatch = Stopwatch(clock)
        clock.advance(4.0)
        assert stopwatch.elapsed() == 4.0

    def test_restart(self):
        clock = VirtualClock()
        stopwatch = Stopwatch(clock)
        clock.advance(4.0)
        stopwatch.restart()
        clock.advance(1.5)
        assert stopwatch.elapsed() == 1.5
