"""Property-based WHERE-tree fuzzing: planner == scan on random trees.

No hypothesis dependency — a seeded ``random.Random`` generates the
condition trees, so every failure replays bit-for-bit from its seed.
Each tree mixes every shape the grammar allows (``=``, ``!=``, ``IN``,
``LIKE``, the ordered comparisons, ``BETWEEN``, AND/OR with parens; the
grammar has no NOT — ``!=`` is its negation form) over a seeded
provenance-shaped store, and every planner must agree: the cost-based
planner, the legacy fixed-bailout planner, and the ``use_indexes=False``
scan must return rows, row order, and billing byte-identical on every
tree, in every battery (strict, mid-propagation eventual consistency,
and with deletes interleaved).
"""

import random

from repro.cloud.account import CloudAccount
from repro.cloud.consistency import ConsistencyModel
from repro.cloud.simpledb import prepare_select

#: Trees per battery; the acceptance floor is >= 200 random trees.
TREE_COUNT = 220

_ATTRIBUTES = ("type", "name", "version", "mtime", "tag")
_VALUES = {
    "type": ["proc", "file", "pipe"],
    "name": [f"obj-{i}" for i in range(6)],
    "version": [f"{i:03d}" for i in range(8)],
    "mtime": [f"{100 + 7 * i:06d}" for i in range(20)],
    "tag": ["a", "b", "c", "zz"],
}


def _seed_store(sdb, rng):
    sdb.create_domain("d")
    items = []
    for i in range(60):
        name = f"u{i // 3:03d}_{i % 3}"
        pairs = [
            ("type", rng.choice(_VALUES["type"])),
            ("version", f"{i % 3:03d}"),
            ("mtime", f"{100 + rng.randrange(150):06d}"),
        ]
        if rng.random() < 0.8:
            pairs.append(("name", rng.choice(_VALUES["name"])))
        # Multi-valued attributes: several tags on some items.
        for _ in range(rng.randrange(3)):
            pairs.append(("tag", rng.choice(_VALUES["tag"])))
        items.append((name, pairs))
    for start in range(0, len(items), 25):
        sdb.batch_put("d", items[start : start + 25])


def _random_value(rng, attribute):
    pool = _VALUES.get(attribute, ["x"])
    if rng.random() < 0.15:
        return rng.choice(["", "zzz", "000", rng.choice(pool) + "!"])
    return rng.choice(pool)


def _random_comparison(rng):
    if rng.random() < 0.2:
        attribute = "itemName()"
        pool = [f"u{i:03d}_{v}" for i in range(20) for v in range(3)]
    else:
        attribute = rng.choice(_ATTRIBUTES)
        pool = None
    op = rng.choice(
        ("=", "!=", "<", "<=", ">", ">=", "between", "in", "like")
    )
    def value():
        if pool is not None:
            return rng.choice(pool)
        return _random_value(rng, attribute)
    if op == "between":
        low, high = value(), value()
        if rng.random() < 0.8 and low > high:
            low, high = high, low  # keep most ranges non-empty
        return f"{attribute} between '{low}' and '{high}'"
    if op == "in":
        values = ", ".join(
            f"'{value()}'" for _ in range(rng.randrange(1, 4))
        )
        return f"{attribute} in ({values})"
    if op == "like":
        base = value()
        pattern = rng.choice(
            [base + "%", base[:2] + "%", "%" + base[-2:], base, "%%"]
        )
        return f"{attribute} like '{pattern}'"
    return f"{attribute} {op} '{value()}'"


def _random_tree(rng, depth):
    if depth <= 0 or rng.random() < 0.4:
        return _random_comparison(rng)
    op = rng.choice(("and", "or"))
    left = _random_tree(rng, depth - 1)
    right = _random_tree(rng, depth - 1)
    if rng.random() < 0.5:
        return f"({left}) {op} ({right})"
    return f"{left} {op} {right}"


def _fingerprint(account, sdb, expression):
    ops_before = account.billing.snapshot()["simpledb"].get("Select", 0)
    bytes_before = account.billing.bytes_received()
    rows = sdb.select(expression)
    return (
        repr(rows),
        account.billing.snapshot()["simpledb"]["Select"] - ops_before,
        account.billing.bytes_received() - bytes_before,
    )


def _run_battery(account, seed, settle_between=0.0):
    rng = random.Random(seed)
    sdb = account.simpledb
    _seed_store(sdb, rng)
    indexed_chains = scanned_chains = 0
    for index in range(TREE_COUNT):
        expression = "select * from d where " + _random_tree(
            rng, rng.randrange(4)
        )
        if settle_between and index % 20 == 0:
            account.settle(settle_between)
        sdb.use_indexes = True
        sdb.planner = "cost"
        before = (sdb.select_stats.indexed, sdb.select_stats.scanned)
        cost = _fingerprint(account, sdb, expression)
        indexed_chains += sdb.select_stats.indexed - before[0]
        scanned_chains += sdb.select_stats.scanned - before[1]
        sdb.planner = "fixed"
        fixed = _fingerprint(account, sdb, expression)
        sdb.use_indexes = False
        scanned = _fingerprint(account, sdb, expression)
        sdb.use_indexes = True
        sdb.planner = "cost"
        assert cost == scanned, f"seed={seed} tree #{index}: {expression}"
        assert fixed == scanned, f"seed={seed} tree #{index}: {expression}"
    return indexed_chains, scanned_chains


def test_fuzz_trees_strict_consistency():
    account = CloudAccount(consistency=ConsistencyModel.STRICT, seed=97)
    indexed, scanned = _run_battery(account, seed=97)
    # The generator actually exercises both planner outcomes.
    assert indexed > 50
    assert scanned > 10


def _select_frozen(account, sdb, expression):
    """Run a select chain without advancing the virtual clock, so the
    indexed and scan runs of one tree observe the *same* time.  (A
    normal select pays read latency; mid-propagation, that skew alone
    can legitimately change which writes are visible between the two
    runs — the equivalence contract is per observation time.)"""
    prepared = prepare_select(expression)
    rows = []
    token = ""
    while True:
        page = account.scheduler.execute_batch(
            [sdb.select_request(prepared, token)], 1, advance_clock=False
        ).results[0]
        rows.extend(page.rows)
        if page.complete:
            return rows
        token = page.next_token


def test_fuzz_trees_under_eventual_consistency():
    """The same battery while writes are still propagating: every tree
    must agree whatever visibility subset the store is in."""
    account = CloudAccount(seed=131)
    rng = random.Random(131)
    sdb = account.simpledb
    _seed_store(sdb, rng)
    for index in range(TREE_COUNT):
        expression = "select * from d where " + _random_tree(
            rng, rng.randrange(4)
        )
        if index % 20 == 0:
            account.settle(1.5)
        sdb.use_indexes = True
        sdb.planner = "cost"
        cost = repr(_select_frozen(account, sdb, expression))
        sdb.planner = "fixed"
        fixed = repr(_select_frozen(account, sdb, expression))
        sdb.use_indexes = False
        scanned = repr(_select_frozen(account, sdb, expression))
        sdb.use_indexes = True
        sdb.planner = "cost"
        assert cost == scanned, f"tree #{index}: {expression}"
        assert fixed == scanned, f"tree #{index}: {expression}"


def test_fuzz_trees_second_seed_with_deletes():
    """A different seed, with a sprinkle of DeleteAttributes between
    trees so pruning interleaves with planning."""
    account = CloudAccount(consistency=ConsistencyModel.STRICT, seed=7)
    rng = random.Random(7)
    sdb = account.simpledb
    _seed_store(sdb, rng)
    for index in range(TREE_COUNT):
        expression = "select * from d where " + _random_tree(
            rng, rng.randrange(4)
        )
        if index % 25 == 10:
            victim = f"u{rng.randrange(20):03d}_{rng.randrange(3)}"
            spec = rng.choice(
                [None, ["tag"], [("version", f"{rng.randrange(3):03d}")]]
            )
            sdb.delete_attributes("d", victim, spec)
        sdb.use_indexes = True
        sdb.planner = "cost"
        cost = _fingerprint(account, sdb, expression)
        sdb.planner = "fixed"
        fixed = _fingerprint(account, sdb, expression)
        sdb.use_indexes = False
        scanned = _fingerprint(account, sdb, expression)
        sdb.use_indexes = True
        sdb.planner = "cost"
        assert cost == scanned, f"tree #{index}: {expression}"
        assert fixed == scanned, f"tree #{index}: {expression}"
