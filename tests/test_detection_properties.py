"""Tests for coupling detection, ancestry hashing, and property checkers."""

import pytest

from repro.cloud.account import CloudAccount
from repro.cloud.blob import Blob
from repro.cloud.consistency import ConsistencyModel
from repro.core import PAS3fs, ProtocolP1, ProtocolP2, UploadMode
from repro.core.detection import (
    CouplingStatus,
    S3ProvenanceReader,
    SimpleDBProvenanceReader,
    ancestry_hash,
    check_coupling,
    find_dangling_ancestors,
)
from repro.core.properties import (
    check_causal_ordering,
    check_data_coupling,
    check_efficient_query,
    check_persistence,
)
from repro.core.protocol_base import data_key
from repro.errors import ClientCrashError
from repro.provenance.graph import NodeRef
from repro.provenance.syscalls import TraceBuilder

MOUNT = "/mnt/s3/"


def _run(protocol_cls, trace, mode=UploadMode.PARALLEL, crash_at=None, skip=0):
    account = CloudAccount(consistency=ConsistencyModel.STRICT, seed=2)
    protocol = protocol_cls(account, mode=mode)
    fs = PAS3fs(account, protocol)
    if crash_at:
        account.faults.arm_crash(crash_at, skip=skip)
    try:
        fs.run(trace)
    except ClientCrashError:
        pass
    protocol.finalize()
    account.settle(300.0)
    if protocol_cls is ProtocolP1:
        reader = S3ProvenanceReader(account, protocol.bucket)
    else:
        reader = SimpleDBProvenanceReader(account, protocol.domain, protocol.bucket)
    return account, protocol, fs, reader


def _two_file_trace():
    builder = TraceBuilder()
    pid = builder.spawn("tool", exec_path="/bin/tool")
    builder.write_close(pid, f"{MOUNT}a", 1000)
    pid2 = builder.spawn("tool2", exec_path="/bin/tool2")
    builder.read(pid2, f"{MOUNT}a", 1000)
    builder.write_close(pid2, f"{MOUNT}b", 2000)
    return builder.trace


class TestCouplingDetection:
    def test_healthy_run_is_coupled(self):
        account, protocol, fs, reader = _run(ProtocolP1, _two_file_trace())
        for path in (f"{MOUNT}a", f"{MOUNT}b"):
            check = check_coupling(account, protocol.bucket, path, reader, timed=False)
            assert check.coupled, check

    def test_crash_between_writes_detected(self):
        account, protocol, fs, reader = _run(
            ProtocolP1, _two_file_trace(), mode=UploadMode.CAUSAL,
            crash_at="p1.after_prov_put", skip=1,
        )
        check = check_coupling(account, protocol.bucket, f"{MOUNT}b", reader, timed=False)
        assert check.status is CouplingStatus.MISSING_DATA

    def test_stale_data_detected(self):
        """Provenance describing a newer version than the data shows."""
        builder = TraceBuilder()
        pid = builder.spawn("tool", exec_path="/bin/tool")
        builder.write(pid, f"{MOUNT}b", 1000)
        builder.close(pid, f"{MOUNT}b")          # version 0 persisted
        builder.write(pid, f"{MOUNT}b", 2000)    # freeze -> version 1
        builder.close(pid, f"{MOUNT}b")
        account, protocol, fs, reader = _run(ProtocolP2, builder.trace)
        # Simulate a lost data update: roll the data object's metadata
        # back to version 0 (digest cleared so the version check, not the
        # hash check, fires).
        key = data_key(f"{MOUNT}b")
        record = account.s3.peek_latest(protocol.bucket, key)
        account.s3.put(
            protocol.bucket, key, record.blob,
            {"prov-uuid": record.metadata["prov-uuid"], "version": "0"},
        )
        account.settle(300.0)
        check = check_coupling(account, protocol.bucket, f"{MOUNT}b", reader, timed=False)
        assert check.status is CouplingStatus.STALE_DATA
        assert check.provenance_version == 1

    def test_hash_mismatch_detected(self):
        account, protocol, fs, reader = _run(ProtocolP2, _two_file_trace())
        key = data_key(f"{MOUNT}b")
        record = account.s3.peek_latest(protocol.bucket, key)
        tampered = Blob.synthetic(record.blob.size, "tampered-content")
        account.s3.put(
            protocol.bucket, key, tampered,
            {**record.metadata, "digest": tampered.digest},
        )
        account.settle(300.0)
        check = check_coupling(account, protocol.bucket, f"{MOUNT}b", reader, timed=False)
        assert check.status is CouplingStatus.HASH_MISMATCH


class TestAncestry:
    def test_no_dangling_in_healthy_run(self):
        account, protocol, fs, reader = _run(ProtocolP2, _two_file_trace())
        ref = NodeRef(fs.collector.file_uuid(f"{MOUNT}b"), 0)
        assert find_dangling_ancestors(reader, ref) == []

    def test_ancestry_hash_stable_and_sensitive(self):
        account1, protocol1, fs1, reader1 = _run(ProtocolP2, _two_file_trace())
        account2, protocol2, fs2, reader2 = _run(ProtocolP2, _two_file_trace())
        ref1 = NodeRef(fs1.collector.file_uuid(f"{MOUNT}b"), 0)
        ref2 = NodeRef(fs2.collector.file_uuid(f"{MOUNT}b"), 0)
        # Identical runs agree on the Merkle ancestry hash.
        assert ancestry_hash(reader1, ref1) == ancestry_hash(reader2, ref2)
        # Different node: different hash.
        other = NodeRef(fs1.collector.file_uuid(f"{MOUNT}a"), 0)
        assert ancestry_hash(reader1, ref1) != ancestry_hash(reader1, other)

    def test_ancestry_hash_changes_when_ancestor_missing(self):
        account, protocol, fs, reader = _run(ProtocolP2, _two_file_trace())
        ref = NodeRef(fs.collector.file_uuid(f"{MOUNT}b"), 0)
        healthy = ancestry_hash(reader, ref)

        account2, protocol2, fs2, reader2 = _run(
            ProtocolP2, _two_file_trace(), mode=UploadMode.CAUSAL,
            crash_at="p2.after_prov_put", skip=0,
        )
        ref2 = NodeRef(fs2.collector.file_uuid(f"{MOUNT}b"), 0)
        assert ancestry_hash(reader2, ref2) != healthy


class TestPropertyCheckers:
    def test_persistence_checker(self):
        builder = TraceBuilder()
        pid = builder.spawn("t")
        builder.write_close(pid, f"{MOUNT}victim", 100)
        builder.unlink(pid, f"{MOUNT}victim")
        account, protocol, fs, reader = _run(ProtocolP2, builder.trace)
        ref = NodeRef(fs.collector.file_uuid(f"{MOUNT}victim"), 0)
        report = check_persistence(account, protocol.bucket, reader, [ref])
        assert report.holds

    def test_causal_ordering_checker_flags_dangling(self):
        account, protocol, fs, reader = _run(ProtocolP2, _two_file_trace())
        # Manufacture a dangling pointer: an item referencing a ghost.
        account.simpledb.put_attributes(
            protocol.domain, "zz-fake_0", [("input", "ghost_7"), ("type", "file")]
        )
        account.settle(300.0)
        report = check_causal_ordering(reader)
        assert not report.holds
        assert any("ghost_7" in v for v in report.violations)

    def test_coupling_checker_counts_stranded_provenance(self):
        account, protocol, fs, reader = _run(
            ProtocolP1, _two_file_trace(), mode=UploadMode.CAUSAL,
            crash_at="p1.after_prov_put", skip=1,
        )
        paths = [f"{MOUNT}a", f"{MOUNT}b"]
        expected = {p: fs.collector.file_uuid(p) for p in paths}
        report = check_data_coupling(
            account, protocol.bucket, reader, paths, expected_uuids=expected
        )
        assert not report.holds

    def test_efficient_query_flag(self):
        account = CloudAccount()
        assert not check_efficient_query(ProtocolP1(account)).holds
        assert check_efficient_query(ProtocolP2(account)).holds
