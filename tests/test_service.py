"""The multi-tenant service tier: shard routing, the ingest gateway,
the query cache, and the client-fleet simulator."""

import pytest

from repro.cloud.account import CloudAccount
from repro.core import PAS3fs, ProtocolP2, ProtocolP3
from repro.core.protocol_base import PROVENANCE_DOMAIN, DomainRouter
from repro.provenance.records import ProvenanceBundle, ProvenanceRecord
from repro.provenance.graph import NodeRef
from repro.provenance.syscalls import TraceBuilder
from repro.query.engine import ShardedSimpleDBQueryEngine, SimpleDBQueryEngine
from repro.service import IngestGateway, LRUCache, ShardRouter
from repro.workloads.base import MOUNT
from repro.workloads.fleet import FLEET_PROGRAM, make_fleet, run_fleet


class TestShardRouter:
    def test_one_shard_keeps_legacy_domain(self):
        router = ShardRouter(shards=1)
        assert router.domains == (PROVENANCE_DOMAIN,)
        assert router.domain_for("anything") == PROVENANCE_DOMAIN

    def test_mapping_is_stable_across_instances(self):
        a = ShardRouter(shards=8)
        b = ShardRouter(shards=8)
        for uuid in ("f-000001", "p-000002", "c0003-f001"):
            assert a.domain_for(uuid) == b.domain_for(uuid)

    def test_all_versions_of_an_object_share_a_shard(self):
        router = ShardRouter(shards=4)
        domains = {router.domain_for("f-000042") for _ in range(10)}
        assert len(domains) == 1

    def test_spreads_across_shards(self):
        router = ShardRouter(shards=4)
        hit = {router.domain_for(f"f-{i:06d}") for i in range(200)}
        assert hit == set(router.domains)

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            ShardRouter(shards=0)

    def test_group_by_domain_preserves_order(self):
        router = DomainRouter("d")
        bundles = [ProvenanceBundle(uuid=f"u{i}") for i in range(3)]
        grouped = router.group_by_domain(bundles)
        assert grouped == [("d", bundles)]


def _small_fleet(clients=4, files_per_client=2, seed=7):
    return make_fleet(
        clients=clients,
        files_per_client=files_per_client,
        extra_attributes=4,
        seed=seed,
    )


class TestIngestGateway:
    def test_coalesces_batches_across_clients(self):
        account = CloudAccount(seed=1)
        gateway = IngestGateway(account)
        for client in _small_fleet():
            gateway.submit(client.client_id, client.works[0])
        gateway.flush_pending()
        # Four lone clients would each pay their own BatchPutAttributes;
        # the gateway fills one shared batch (4 clients x 2 items < 25).
        assert gateway.stats.sdb_batches == 1
        assert gateway.stats.sdb_batches_unbatched == 4
        assert gateway.stats.sdb_batches_saved == 3
        assert len(gateway.stats.clients) == 4

    def test_store_is_queryable_after_ingest(self):
        account = CloudAccount(seed=1)
        gateway = IngestGateway(account)
        fleet = _small_fleet()
        run_fleet(account, gateway, fleet, seed=7)
        account.settle(60.0)
        engine = SimpleDBQueryEngine(account)
        path = fleet[0].works[0].primary.path
        attributes, stats = engine.q2_object_provenance(path)
        assert attributes["type"] == ["file"]
        assert "sha1" in attributes  # the coupling record rode along
        assert stats.operations > 0
        outputs, _ = engine.q3_direct_outputs(FLEET_PROGRAM)
        assert len(outputs) == sum(len(c.works) for c in fleet)

    def test_flush_pending_empty_window_is_free(self):
        account = CloudAccount(seed=1)
        gateway = IngestGateway(account)
        before = account.billing.operation_count()
        assert gateway.flush_pending() == 0
        assert account.billing.operation_count() == before


class TestFleetDeterminism:
    def _run(self, shards, seed):
        account = CloudAccount(seed=seed)
        router = ShardRouter(shards=shards)
        gateway = IngestGateway(account, router)
        fleet = make_fleet(clients=6, files_per_client=3, seed=seed)
        result = run_fleet(account, gateway, fleet, seed=seed)
        account.settle(60.0)
        engine = ShardedSimpleDBQueryEngine(account, router)
        q2, _ = engine.q2_object_provenance(fleet[0].works[0].primary.path)
        q3, _ = engine.q3_direct_outputs(FLEET_PROGRAM)
        q4, _ = engine.q4_all_descendants(FLEET_PROGRAM)
        billing = (
            result.operations,
            result.bytes_transmitted,
            result.cost_usd,
            result.elapsed_seconds,
        )
        return billing, repr((q2, q3, q4))

    def test_same_seed_same_shards_is_identical(self):
        # Acceptance: same seed + same shard count => identical billing
        # totals and query answers across two runs.
        assert self._run(shards=4, seed=11) == self._run(shards=4, seed=11)

    def test_shard_count_does_not_change_answers(self):
        # Acceptance: Q2-Q4 through the shard-aware path are
        # byte-identical to the single-domain path for the same seed.
        _, single = self._run(shards=1, seed=11)
        _, sharded = self._run(shards=4, seed=11)
        assert single == sharded

    def test_q4_reaches_beyond_direct_outputs(self):
        account = CloudAccount(seed=3)
        gateway = IngestGateway(account)
        fleet = make_fleet(clients=6, files_per_client=4, seed=3)
        run_fleet(account, gateway, fleet, seed=3)
        account.settle(60.0)
        engine = SimpleDBQueryEngine(account)
        q3, _ = engine.q3_direct_outputs(FLEET_PROGRAM)
        q4, _ = engine.q4_all_descendants(FLEET_PROGRAM)
        # Every file derives from the worker, so Q3 == Q4 as sets here;
        # the closure must at least cover the direct outputs.
        assert set(q3) <= set(q4)


class TestLRUCache:
    def test_hit_miss_and_eviction(self):
        cache = LRUCache(capacity=2)
        assert cache.get("a") is None
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes "a"
        cache.put("c", 3)  # evicts "b", the LRU entry
        assert cache.get("b") is None
        assert cache.get("c") == 3
        assert cache.stats.hits == 2
        assert cache.stats.misses == 2
        assert cache.stats.evictions == 1

    def test_generation_invalidates_everything(self):
        cache = LRUCache(capacity=8)
        cache.put("k", "v")
        cache.note_write()
        assert cache.get("k") is None
        assert cache.stats.invalidations == 1

    def test_generation_bump_drops_stale_entries(self):
        # A generation bump makes every stored entry unreachable, so it
        # must also leave the map: dead entries inflated the size gauge
        # and pinned their answer objects.
        cache = LRUCache(capacity=8)
        for index in range(8):
            cache.put(f"k{index}", index)
        assert len(cache) == 8
        cache.note_write()
        assert len(cache) == 0
        cache.put("fresh", "v")
        assert len(cache) == 1
        assert cache.get("fresh") == "v"

    def test_no_spurious_evictions_after_write(self):
        # Refilling a full cache after a write must not evict anything:
        # the old generation's entries are gone, so the new generation's
        # working set has the whole capacity to itself.  Before the fix,
        # stranded dead entries burned `capacity` evictions per bump.
        cache = LRUCache(capacity=4)
        for index in range(4):
            cache.put(f"k{index}", index)
        cache.note_write()
        for index in range(4):
            cache.put(f"k{index}", index)
        assert cache.stats.evictions == 0
        assert len(cache) == 4

    def test_write_heavy_interleaving_keeps_hit_rate(self):
        # Read-repeat-write cycles: each cycle misses once per key and
        # then hits; generation bumps never cost extra misses beyond the
        # cold reload, so the hit rate stays at the workload's ceiling.
        cache = LRUCache(capacity=8)
        keys = [f"q{index}" for index in range(4)]
        for _ in range(10):
            for key in keys:
                if cache.get(key) is None:
                    cache.put(key, key.upper())
            for key in keys:
                assert cache.get(key) == key.upper()
            cache.note_write()
        # Per cycle: 4 cold misses + 4 warm hits from the reload loop's
        # second pass -> exactly half the lookups hit, every cycle.
        assert cache.stats.misses == 40
        assert cache.stats.hits == 40
        assert cache.stats.hit_rate == 0.5
        assert cache.stats.evictions == 0


class TestCachedQueryEngine:
    def _populated_gateway(self):
        account = CloudAccount(seed=5)
        gateway = IngestGateway(account, ShardRouter(shards=2))
        fleet = _small_fleet(seed=5)
        run_fleet(account, gateway, fleet, seed=5)
        account.settle(60.0)
        return account, gateway, fleet[0].works[0].primary.path

    def test_repeated_q2_hits_cache_with_zero_cloud_ops(self):
        account, gateway, path = self._populated_gateway()
        engine = gateway.query_engine()
        before = account.billing.operation_count()
        cold, cold_stats = engine.q2_object_provenance(path)
        cold_ops = account.billing.operation_count() - before
        before = account.billing.operation_count()
        warm, warm_stats = engine.q2_object_provenance(path)
        warm_ops = account.billing.operation_count() - before
        assert cold_ops > 0
        assert warm_ops == 0
        assert warm_stats.operations == 0
        assert warm_stats.elapsed_seconds == 0.0
        assert repr(warm) == repr(cold)
        assert engine.stats.hits == 1
        assert engine.stats.misses == 1

    def test_ingest_invalidates_cached_answers(self):
        account, gateway, path = self._populated_gateway()
        engine = gateway.query_engine()
        engine.q2_object_provenance(path)
        engine.q2_object_provenance(path)
        assert engine.stats.hits == 1
        # New data arrives through the gateway: the cache generation
        # bumps, so the next lookup goes back to the cloud.
        extra = make_fleet(clients=1, files_per_client=1, seed=99)[0]
        gateway.submit(extra.client_id, extra.works[0])
        gateway.flush_pending()
        account.settle(60.0)
        engine.q2_object_provenance(path)
        assert engine.stats.hits == 1
        assert engine.stats.misses == 2


def _pipeline_trace():
    """A tiny two-stage pipeline touching the mount."""
    builder = TraceBuilder()
    gen = builder.spawn("generate", argv=["generate"], exec_path="/bin/generate")
    builder.read(gen, "/local/seed.dat", 1024)
    builder.write_close(gen, f"{MOUNT}pipe/stage1.out", 64 * 1024)
    builder.exit(gen)
    xform = builder.spawn("transform", argv=["transform"], exec_path="/bin/transform")
    builder.read(xform, f"{MOUNT}pipe/stage1.out", 64 * 1024)
    builder.write_close(xform, f"{MOUNT}pipe/stage2.out", 32 * 1024)
    builder.exit(xform)
    return builder.trace


class TestRoutedProtocols:
    """P2/P3 with a shard router store the same provenance the paper's
    single-domain configuration stores — just spread over domains."""

    def _answers(self, protocol_cls, router, seed=21, **kwargs):
        account = CloudAccount(seed=seed)
        protocol = protocol_cls(account, router=router, **kwargs)
        fs = PAS3fs(account, protocol)
        fs.run(_pipeline_trace())
        fs.finalize()
        account.settle(120.0)
        if router is not None and len(router.domains) > 1:
            engine = ShardedSimpleDBQueryEngine(account, router)
        else:
            engine = SimpleDBQueryEngine(account)
        q2, _ = engine.q2_object_provenance(f"{MOUNT}pipe/stage2.out")
        q4, _ = engine.q4_all_descendants("generate")
        return repr((q2, q4))

    def test_p2_sharded_matches_single_domain(self):
        single = self._answers(ProtocolP2, None)
        sharded = self._answers(ProtocolP2, ShardRouter(shards=3))
        assert single == sharded

    def test_p3_sharded_matches_single_domain(self):
        single = self._answers(ProtocolP3, None)
        sharded = self._answers(ProtocolP3, ShardRouter(shards=3))
        assert single == sharded

    def test_p3_routed_commit_spreads_items(self):
        account = CloudAccount(seed=21)
        router = ShardRouter(shards=3)
        protocol = ProtocolP3(account, router=router)
        fs = PAS3fs(account, protocol)
        fs.run(_pipeline_trace())
        fs.finalize()
        populated = [
            domain
            for domain in router.domains
            if account.simpledb.peek_item_names(domain)
        ]
        assert len(populated) > 1


class TestTimeBasedWindows:
    """On the kernel the gateway's coalescing window is *time-based*:
    whoever submits within the same window_s shares one cloud batch,
    regardless of which client called what."""

    def test_submissions_within_a_window_coalesce_across_clients(self):
        from repro.sim import Delay, SimKernel

        account = CloudAccount(seed=0)
        gateway = IngestGateway(account, ShardRouter(shards=2))
        fleet = _small_fleet(clients=4, files_per_client=1)
        kernel = SimKernel(account)
        kernel.spawn(gateway.process(window_s=1.0), name="gateway", daemon=True)

        def client(c, offset):
            # All four clients land inside the first 1-second window,
            # staggered in time — something the call-based gateway could
            # not express.
            yield Delay(offset)
            gateway.submit(c.client_id, c.works[0])

        for index, c in enumerate(fleet):
            kernel.spawn(client(c, 0.1 + index * 0.2), name=c.client_id)
        kernel.run()
        while gateway.busy:
            kernel.run(until=account.now + 1.0)

        assert gateway.stats.flushes == 4
        assert gateway.stats.windows == 1
        assert len(gateway.stats.clients) == 4
        assert gateway.stats.sdb_batches_saved > 0

    def test_submissions_in_different_windows_do_not_coalesce(self):
        from repro.sim import Delay, SimKernel

        account = CloudAccount(seed=0)
        gateway = IngestGateway(account, ShardRouter(shards=1))
        fleet = _small_fleet(clients=2, files_per_client=1)
        kernel = SimKernel(account)
        kernel.spawn(gateway.process(window_s=0.5), name="gateway", daemon=True)

        def client(c, offset):
            yield Delay(offset)
            gateway.submit(c.client_id, c.works[0])

        kernel.spawn(client(fleet[0], 0.1), name="early")
        kernel.spawn(client(fleet[1], 4.0), name="late")
        kernel.run()
        while gateway.busy:
            kernel.run(until=account.now + 0.5)

        assert gateway.stats.flushes == 2
        assert gateway.stats.windows == 2

    def test_kernel_fleet_run_is_deterministic_and_complete(self):
        from repro.workloads.fleet import run_fleet_kernel

        def once():
            account = CloudAccount(seed=11)
            gateway = IngestGateway(account, ShardRouter(shards=2))
            fleet = _small_fleet(clients=5, files_per_client=3)
            result = run_fleet_kernel(
                account, gateway, fleet, seed=11, think_s=0.5, window_s=0.25
            )
            return result, gateway.stats.windows, gateway.stats.data_puts

        first, first_windows, first_puts = once()
        second, second_windows, second_puts = once()
        assert first == second
        assert first_windows == second_windows
        # Every flush's data object shipped despite the window cadence.
        assert first_puts == sum(
            1 for c in _small_fleet(clients=5, files_per_client=3)
            for w in c.works if w.include_data
        )
