"""The indexed select engine: planner, index maintenance, pagination.

The contract under test everywhere: the secondary indexes are an
over-approximation (every value an item ever held), every candidate is
re-verified through the eventually-consistent ``_observe`` read, and so
indexed selects are byte-identical — rows, row order, request counts,
billed bytes — to the ``use_indexes=False`` full-scan fallback.
"""

import pytest

import repro.cloud.simpledb as sdb_module
from repro.cloud.simpledb import SelectPage, parse_select, prepare_select
from repro.errors import InvalidRequestError


def _populate(sdb, domain):
    sdb.create_domain(domain)
    sdb.batch_put(
        domain,
        [
            ("u1_0", [("type", "proc"), ("name", "blast"), ("size", "10")]),
            ("u1_1", [("type", "proc"), ("name", "blast"), ("input", "u1_0")]),
            ("u2_0", [("type", "file"), ("name", "hits"), ("input", "u1_1")]),
            ("u2_1", [("type", "file"), ("name", "hits"), ("input", "u2_0")]),
            ("u3_0", [("type", "file"), ("name", "sorted"), ("input", "u2_1")]),
        ],
    )


#: Every operator/shape the planner must agree with the scan on,
#: including the unindexable ones that force the fallback.
_EXPRESSIONS = (
    "select * from d",
    "select * from d where type = 'proc'",
    "select * from d where type = 'nope'",
    "select * from d where itemName() = 'u2_0'",
    "select * from d where itemName() like 'u2_%'",
    "select * from d where itemName() like '%_0'",
    "select * from d where itemName() in ('u1_0', 'u3_0', 'ghost')",
    "select * from d where input in ('u1_1', 'u2_1')",
    "select * from d where type = 'file' and name = 'hits'",
    "select * from d where type = 'file' and size != '0'",
    "select * from d where name = 'blast' or name = 'sorted'",
    "select * from d where name = 'blast' or size != '0'",
    "select * from d where type != 'file'",
    "select * from d where (name = 'hits' or name = 'blast') and type = 'file'",
)


class TestPlannerEquivalence:
    def test_indexed_matches_scan_byte_for_byte(self, strict_account):
        sdb = strict_account.simpledb
        _populate(sdb, "d")
        for expression in _EXPRESSIONS:
            sdb.use_indexes = True
            ops_before = strict_account.billing.snapshot()["simpledb"].get(
                "Select", 0
            )
            bytes_before = strict_account.billing.bytes_received()
            indexed = sdb.select(expression)
            indexed_ops = (
                strict_account.billing.snapshot()["simpledb"]["Select"] - ops_before
            )
            indexed_bytes = strict_account.billing.bytes_received() - bytes_before

            sdb.use_indexes = False
            ops_before = strict_account.billing.snapshot()["simpledb"]["Select"]
            bytes_before = strict_account.billing.bytes_received()
            scanned = sdb.select(expression)
            scan_ops = (
                strict_account.billing.snapshot()["simpledb"]["Select"] - ops_before
            )
            scan_bytes = strict_account.billing.bytes_received() - bytes_before
            sdb.use_indexes = True

            assert repr(indexed) == repr(scanned), expression
            assert indexed_ops == scan_ops, expression
            assert indexed_bytes == scan_bytes, expression

    def test_planner_stats_classify_chains(self, strict_account):
        sdb = strict_account.simpledb
        _populate(sdb, "d")
        sdb.select("select * from d where name = 'blast'")
        assert sdb.select_stats.indexed == 1
        sdb.select("select * from d where type != 'file'")
        assert sdb.select_stats.scanned == 1
        sdb.select("select * from d")
        assert sdb.select_stats.unconditional == 1
        # A one-side-indexable AND narrows through the indexed side.
        sdb.select("select * from d where name = 'hits' and size != '0'")
        assert sdb.select_stats.indexed == 2
        # OR with an unindexable side cannot be narrowed.
        sdb.select("select * from d where name = 'hits' or size != '0'")
        assert sdb.select_stats.scanned == 2

    def test_like_patterns_precompiled(self):
        _, condition = parse_select("select * from d where name like 'a%b%c'")
        assert condition._like_re is not None
        assert condition.matches("i", {"name": ["aXbYc"]})
        assert not condition.matches("i", {"name": ["aXbY"]})

    def test_parse_cache_shares_conditions(self):
        first = parse_select("select * from d where name = 'shared'")
        second = parse_select("select * from d where name = 'shared'")
        assert first[1] is second[1]


class TestIndexMaintenance:
    def test_duplicate_reput_does_not_double_index(self, strict_account):
        sdb = strict_account.simpledb
        sdb.create_domain("d")
        # A daemon re-commit re-issues the same writes (§4.3.3); set
        # semantics must keep both the item values and the index flat.
        for _ in range(3):
            sdb.put_attributes("d", "i", [("input", "u1_0"), ("type", "file")])
        assert sdb.index_cardinality("d", "input", "u1_0") == 1
        rows = sdb.select("select * from d where input = 'u1_0'")
        assert rows == [("i", {"input": ["u1_0"], "type": ["file"]})]
        # The sorted-name order holds exactly one entry for the item.
        assert [n for n, _ in sdb.select("select * from d")] == ["i"]

    def test_replace_keeps_superset_index_but_filters(self, strict_account):
        sdb = strict_account.simpledb
        sdb.create_domain("d")
        sdb.put_attributes("d", "i", [("v", "old")])
        sdb.put_attributes("d", "i", [("v", "new")], replace=True)
        # The stale entry stays in the index (over-approximation)...
        assert sdb.index_cardinality("d", "v", "old") == 1
        # ...but verification filters it out of every answer.
        assert sdb.select("select * from d where v = 'old'") == []
        assert [n for n, _ in sdb.select("select * from d where v = 'new'")] == ["i"]

    def test_delete_hides_item_in_both_modes(self, strict_account):
        sdb = strict_account.simpledb
        _populate(sdb, "d")
        sdb.delete_attributes("d", "u2_0")
        for use_indexes in (True, False):
            sdb.use_indexes = use_indexes
            names = [n for n, _ in sdb.select("select * from d")]
            assert "u2_0" not in names
            assert sdb.select("select * from d where itemName() = 'u2_0'") == []
        sdb.use_indexes = True
        assert sdb.get_attributes("d", "u2_0") == {}
        # Deleting an absent item is a billable no-op.
        sdb.delete_attributes("d", "ghost")
        # Re-putting after a delete resurrects the item.
        sdb.put_attributes("d", "u2_0", [("type", "file")])
        assert [
            n for n, _ in sdb.select("select * from d where itemName() = 'u2_0'")
        ] == ["u2_0"]


class TestEventualConsistencyVisibility:
    def test_fresh_put_invisible_to_indexed_select(self, account):
        sdb = account.simpledb
        sdb.create_domain("d")
        sdb.put_attributes("d", "i", [("name", "fresh")])
        # The write is committed (it is in the index) but its visibility
        # window has not elapsed: the indexed select must agree with what
        # _observe shows, not with what the index holds.
        assert sdb.index_cardinality("d", "name", "fresh") == 1
        assert sdb.select("select * from d where name = 'fresh'") == []
        sdb.use_indexes = False
        assert sdb.select("select * from d where name = 'fresh'") == []
        sdb.use_indexes = True
        account.settle(120.0)
        rows = sdb.select("select * from d where name = 'fresh'")
        assert [n for n, _ in rows] == ["i"]

    def test_indexed_and_scan_agree_mid_propagation(self, account):
        sdb = account.simpledb
        sdb.create_domain("d")
        for n in range(12):
            sdb.put_attributes("d", f"i{n}", [("type", "file")])
        # Some writes are visible, some still propagating; whatever the
        # split, the two paths must agree row for row.
        for _ in range(6):
            account.settle(2.0)
            sdb.use_indexes = True
            indexed = sdb.select("select * from d where type = 'file'")
            sdb.use_indexes = False
            scanned = sdb.select("select * from d where type = 'file'")
            sdb.use_indexes = True
            assert repr(indexed) == repr(scanned)


class TestSnapshotPagination:
    def _tiny_pages(self, monkeypatch):
        monkeypatch.setattr(sdb_module, "SELECT_PAGE_ITEMS", 3)

    def test_chain_serves_from_snapshot(self, strict_account, monkeypatch):
        self._tiny_pages(monkeypatch)
        sdb = strict_account.simpledb
        sdb.create_domain("d")
        sdb.batch_put(
            "d", [(f"i{n}", [("a", str(n))]) for n in range(8)]
        )
        before = strict_account.billing.snapshot()["simpledb"].get("Select", 0)
        rows = sdb.select("select * from d")
        pages = strict_account.billing.snapshot()["simpledb"]["Select"] - before
        assert [n for n, _ in rows] == [f"i{n}" for n in range(8)]
        assert pages == 3  # 3 + 3 + 2
        # The chain's snapshot is dropped once the last page is served.
        assert sdb._select_snapshots == {}

    def test_tokens_are_snapshot_tokens(self, strict_account, monkeypatch):
        self._tiny_pages(monkeypatch)
        sdb = strict_account.simpledb
        sdb.create_domain("d")
        sdb.batch_put("d", [(f"i{n}", [("a", "v")]) for n in range(5)])
        page: SelectPage = strict_account.scheduler.execute_one(
            sdb.select_request("select * from d")
        )
        assert page.next_token.startswith("snap-")
        rest: SelectPage = strict_account.scheduler.execute_one(
            sdb.select_request("select * from d", page.next_token)
        )
        assert rest.complete
        assert [n for n, _ in page.rows + rest.rows] == [f"i{n}" for n in range(5)]

    def test_legacy_numeric_token_still_resumes(self, strict_account, monkeypatch):
        self._tiny_pages(monkeypatch)
        sdb = strict_account.simpledb
        sdb.create_domain("d")
        sdb.batch_put("d", [(f"i{n}", [("a", "v")]) for n in range(5)])
        page: SelectPage = strict_account.scheduler.execute_one(
            sdb.select_request("select * from d", "3")
        )
        assert [n for n, _ in page.rows] == ["i3", "i4"]
        assert sdb.select_stats.legacy_tokens == 1

    def test_expired_or_malformed_tokens_rejected(self, strict_account):
        sdb = strict_account.simpledb
        sdb.create_domain("d")
        sdb.put_attributes("d", "i", [("a", "v")])
        with pytest.raises(InvalidRequestError):
            strict_account.scheduler.execute_one(
                sdb.select_request("select * from d", "snap-999:3")
            )
        with pytest.raises(InvalidRequestError):
            strict_account.scheduler.execute_one(
                sdb.select_request("select * from d", "snap-x:y")
            )
        with pytest.raises(InvalidRequestError):
            strict_account.scheduler.execute_one(
                sdb.select_request("select * from d", "bogus")
            )


class TestSnapshotGC:
    """Abandoned select snapshots expire on virtual time, like SQS
    in-flight messages — long fleet runs stop leaking match sets."""

    def _tiny_pages(self, monkeypatch):
        monkeypatch.setattr(sdb_module, "SELECT_PAGE_ITEMS", 3)

    def _start_chain(self, strict_account):
        sdb = strict_account.simpledb
        sdb.create_domain("d")
        sdb.batch_put("d", [(f"i{n}", [("a", "v")]) for n in range(8)])
        page: SelectPage = strict_account.scheduler.execute_one(
            sdb.select_request("select * from d")
        )
        assert page.next_token.startswith("snap-")
        return sdb, page

    def test_abandoned_snapshot_expires_after_ttl(
        self, strict_account, monkeypatch
    ):
        self._tiny_pages(monkeypatch)
        sdb, _page = self._start_chain(strict_account)
        assert len(sdb._select_snapshots) == 1
        # The chain is abandoned; any select past the TTL collects it.
        strict_account.clock.advance(
            sdb_module.SELECT_SNAPSHOT_TTL_SECONDS + 1.0
        )
        sdb.select("select * from d where itemName() = 'i0'")
        assert sdb._select_snapshots == {}
        assert sdb.select_stats.snapshots_expired == 1

    def test_snapshot_in_active_use_survives_the_ttl(
        self, strict_account, monkeypatch
    ):
        self._tiny_pages(monkeypatch)
        sdb, page = self._start_chain(strict_account)
        # Pages keep touching the snapshot: its GC clock resets, so a
        # slow-but-live chain is never collected under it.
        for _ in range(2):
            strict_account.clock.advance(
                sdb_module.SELECT_SNAPSHOT_TTL_SECONDS / 2
            )
            page = strict_account.scheduler.execute_one(
                sdb.select_request("select * from d", page.next_token)
            )
        assert sdb.select_stats.snapshots_expired == 0
        assert page.complete

    def test_expired_token_falls_back_to_rematch(
        self, strict_account, monkeypatch
    ):
        self._tiny_pages(monkeypatch)
        sdb, page = self._start_chain(strict_account)
        first_rows = [n for n, _ in page.rows]
        strict_account.clock.advance(
            sdb_module.SELECT_SNAPSHOT_TTL_SECONDS + 1.0
        )
        # The snapshot is gone, but the token was genuinely issued: the
        # page re-matches at its own observation time and the chain
        # completes with no rows lost — a clean degradation to the
        # legacy per-page semantics, not an error.
        rows = list(first_rows)
        token = page.next_token
        while token:
            page = strict_account.scheduler.execute_one(
                sdb.select_request("select * from d", token)
            )
            rows.extend(n for n, _ in page.rows)
            token = page.next_token
        assert rows == [f"i{n}" for n in range(8)]
        assert sdb.select_stats.expired_token_rematches >= 1

    def test_prepared_select_reused_across_chain(self, strict_account, monkeypatch):
        self._tiny_pages(monkeypatch)
        sdb = strict_account.simpledb
        sdb.create_domain("d")
        sdb.batch_put("d", [(f"i{n}", [("a", "v")]) for n in range(7)])
        prepared = prepare_select("select * from d where a = 'v'")
        rows = sdb.select(prepared)
        assert len(rows) == 7
        # One chain, one planning decision — not one per page.
        assert sdb.select_stats.indexed == 1
