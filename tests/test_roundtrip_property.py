"""Seeded property-based round-trips for the wire formats.

The WAL messages and the provenance-record encoding are the two formats
that cross a process boundary (SQS bodies, S3 provenance objects); until
now only end-to-end paths exercised them, on friendly inputs.  These
tests generate adversarial records from fixed seeds — pipes, backslashes,
newlines, carriage returns, unicode, empty values — and pin the two
properties serialization must hold:

- decode(encode(x)) reconstructs x exactly (values, xref-ness, order),
- encode(decode(encode(x))) is byte-identical to encode(x) — the
  canonical-form property the differential matrix leans on when it
  compares store fingerprints across backends.
"""

import random
import string

import pytest

from repro.core.wal_messages import (
    HEADER_RESERVE,
    DataManifestEntry,
    build_messages,
    parse_message,
)
from repro.provenance.graph import NodeRef
from repro.provenance.records import ProvenanceRecord
from repro.provenance.serialization import (
    decode_record,
    decode_records,
    encode_record,
    encode_records,
)

#: Characters chosen to stress the escaping: the field separator, the
#: escape character itself, line separators, spacing, and unicode.
NASTY = "|\\\n\r\t του←🦉 " + string.ascii_letters + string.digits + "_-./:%"


def _random_text(rng: random.Random, max_len: int = 24) -> str:
    return "".join(
        rng.choice(NASTY) for _ in range(rng.randrange(0, max_len))
    )


def _random_ref(rng: random.Random) -> NodeRef:
    # uuids stay in the identifier alphabet (real uuids do too); the
    # version is what str/parse round-trips through "uuid_version".
    uuid = "".join(
        rng.choice(string.ascii_lowercase + string.digits + "-")
        for _ in range(rng.randrange(1, 12))
    )
    return NodeRef(uuid, rng.randrange(0, 500))


def _random_record(rng: random.Random) -> ProvenanceRecord:
    subject = _random_ref(rng)
    attribute = "".join(
        rng.choice(string.ascii_lowercase + "_") for _ in range(rng.randrange(1, 10))
    )
    if rng.random() < 0.3:
        return ProvenanceRecord(subject, attribute, _random_ref(rng))
    return ProvenanceRecord(subject, attribute, _random_text(rng))


def _random_records(seed: int, count: int = 60):
    rng = random.Random(seed)
    return [_random_record(rng) for _ in range(count)]


@pytest.mark.parametrize("seed", [11, 97, 2024])
class TestRecordRoundTrip:
    def test_decode_reconstructs_the_record(self, seed):
        for record in _random_records(seed):
            back = decode_record(encode_record(record))
            assert back == record
            assert back.is_xref == record.is_xref

    def test_reencode_is_byte_identical(self, seed):
        for record in _random_records(seed):
            wire = encode_record(record)
            assert encode_record(decode_record(wire)) == wire

    def test_batch_roundtrip_preserves_order_and_bytes(self, seed):
        records = _random_records(seed)
        wire = encode_records(records)
        back = decode_records(wire)
        assert back == records
        assert encode_records(back) == wire


@pytest.mark.parametrize("seed", [11, 97, 2024])
class TestWalMessageRoundTrip:
    def _random_entries(self, seed):
        rng = random.Random(seed * 7 + 1)
        return [
            DataManifestEntry(
                final_key=f"files/dir{rng.randrange(9)}/f{i}.dat",
                uuid=_random_ref(rng).uuid,
                version=rng.randrange(0, 99),
                tmp_key=f"tmp/{i}-{rng.randrange(1 << 20):05x}",
                size=rng.randrange(0, 1 << 24),
                digest=f"{rng.getrandbits(160):040x}",
            )
            for i in range(rng.randrange(1, 8))
        ]

    def test_manifest_entry_roundtrip(self, seed):
        for entry in self._random_entries(seed):
            wire = entry.encode()
            back = DataManifestEntry.decode(wire)
            assert back == entry
            assert back.encode() == wire

    def test_messages_roundtrip_through_parse(self, seed):
        records = _random_records(seed)
        entries = self._random_entries(seed)
        messages = build_messages("txn-rt", entries, records)
        parsed = [parse_message(body) for body in messages]
        assert [p.seq for p in parsed] == list(range(len(messages)))
        assert {p.total for p in parsed} == {len(messages)}
        assert {p.txn_id for p in parsed} == {"txn-rt"}
        got_entries = [e for p in parsed for e in p.data_entries]
        got_records = [r for p in parsed for r in p.records]
        assert got_entries == entries
        assert got_records == records

    def test_rebuild_from_parse_is_byte_identical(self, seed):
        records = _random_records(seed)
        entries = self._random_entries(seed)
        messages = build_messages("txn-rt", entries, records)
        parsed = [parse_message(body) for body in messages]
        rebuilt = build_messages(
            "txn-rt",
            [e for p in parsed for e in p.data_entries],
            [r for p in parsed for r in p.records],
        )
        assert rebuilt == messages

    def test_every_message_respects_the_sqs_limit(self, seed):
        records = _random_records(seed, count=400)
        messages = build_messages("txn-rt", [], records, limit_bytes=1024)
        assert len(messages) > 1
        for body in messages:
            assert len(body.encode("utf-8")) <= 1024
        roundtrip = [r for body in messages for r in parse_message(body).records]
        assert roundtrip == records

    def test_header_reserve_is_positive(self, seed):
        del seed
        assert HEADER_RESERVE > 0
